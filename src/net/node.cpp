#include "net/node.hpp"

#include <utility>

#include "common/check.hpp"

namespace sdsi::net {

namespace {

template <typename T>
std::shared_ptr<const T> payload_of(const routing::Message& msg) {
  const auto* ptr = std::any_cast<std::shared_ptr<const T>>(&msg.payload);
  SDSI_CHECK(ptr != nullptr && *ptr != nullptr);
  return *ptr;
}

}  // namespace

NetNode::NetNode(const NetRing& ring, NodeIndex self, Transport& transport,
                 NetNodeConfig config)
    : ring_(ring),
      self_(self),
      transport_(transport),
      config_(std::move(config)),
      mapper_(ring.space()) {
  config_.features.validate();
}

std::uint64_t NetNode::next_trace_id() noexcept {
  // Globally unique without coordination: high bits carry the node index.
  return (static_cast<std::uint64_t>(self_) + 1) << 40 | ++trace_counter_;
}

void NetNode::publish_value(StreamId stream, Sample value, sim::SimTime now) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    auto state = std::make_unique<LocalStream>(LocalStream{
        streams::StreamSummarizer(config_.features),
        core::MbrBatcher(config_.batching), 0});
    it = streams_.emplace(stream, std::move(state)).first;
  }
  LocalStream& state = *it->second;
  state.summarizer.push(value);
  if (!state.summarizer.ready()) {
    return;
  }
  dsp::FeatureVector features;
  if (!state.summarizer.features_into(features)) {
    return;  // degenerate window: no direction on the unit sphere
  }
  if (std::optional<dsp::Mbr> closed = state.batcher.push(features)) {
    publish_mbr(stream, state, std::move(*closed), now);
  }
}

void NetNode::publish_mbr(StreamId stream, LocalStream& state, dsp::Mbr mbr,
                          sim::SimTime now) {
  const auto [lo, hi] = mapper_.mbr_range(mbr);
  const sim::SimTime expires = now + config_.mbr_lifespan;
  const auto payload = std::make_shared<const core::MbrPayload>(
      core::MbrPayload{stream, self_, std::move(mbr), state.batch_seq++,
                       expires});

  if (config_.store_local_summaries) {
    if (store_.add_mbr({payload->stream, self_, payload->mbr,
                        payload->batch_seq, now, expires})) {
      ++counters_.mbrs_stored;
    }
  }

  routing::Message msg;
  msg.kind = routing::MsgKind::kMbrUpdate;
  msg.origin = self_;
  msg.payload = payload;
  msg.has_range = true;
  msg.range_lo = lo;
  msg.range_hi = hi;
  msg.range_dir = routing::RangeDir::kUp;  // sequential multicast
  msg.sent_at = now;
  msg.trace_id = next_trace_id();
  ++counters_.mbrs_published;
  route_to_key(lo, std::move(msg), now);
}

void NetNode::subscribe_similarity(core::QueryId id,
                                   dsp::FeatureVector features, double radius,
                                   sim::Duration lifespan, sim::SimTime now) {
  auto query = std::make_shared<const core::SimilarityQuery>(
      core::SimilarityQuery{id, self_, std::move(features), radius, lifespan,
                            now});
  const auto [lo, hi] = mapper_.query_range(query->features, radius);
  const Key middle = ring_.space().midpoint(lo, hi);
  results_.try_emplace(id);

  routing::Message msg;
  msg.kind = routing::MsgKind::kSimilarityQuery;
  msg.origin = self_;
  msg.payload = std::make_shared<const core::SimilarityQueryPayload>(
      core::SimilarityQueryPayload{std::move(query), middle});
  msg.has_range = true;
  msg.range_lo = lo;
  msg.range_hi = hi;
  msg.range_dir = routing::RangeDir::kUp;
  msg.sent_at = now;
  msg.trace_id = next_trace_id();
  ++counters_.queries_posed;
  route_to_key(lo, std::move(msg), now);
}

void NetNode::route_to_key(Key key, routing::Message msg, sim::SimTime now) {
  msg.target_key = ring_.space().wrap(key);
  const NodeIndex dst = ring_.successor_of_key(msg.target_key);
  if (dst == self_) {
    deliver(std::move(msg), now);
    return;
  }
  msg.hops = 1;
  if (!transport_.send(dst, msg)) {
    ++counters_.send_failures;
  }
}

void NetNode::deliver(routing::Message&& msg, sim::SimTime now) {
  switch (msg.kind) {
    case routing::MsgKind::kMbrUpdate:
      handle_mbr(msg, now);
      break;
    case routing::MsgKind::kSimilarityQuery:
      handle_similarity_query(msg);
      break;
    case routing::MsgKind::kResponse:
      handle_response(msg);
      return;  // responses are point-to-point, never range-forwarded
    default:
      return;  // kinds outside the net pipeline's scope: ignore
  }
  if (msg.has_range) {
    forward_range_copies(msg);
  }
}

void NetNode::handle_mbr(const routing::Message& msg, sim::SimTime now) {
  const auto payload = payload_of<core::MbrPayload>(msg);
  // The source already stored this batch at publish time; every other node
  // stores it here (the payload's absolute expiry keeps redelivery
  // idempotent, same as the sim's handle_mbr).
  if (!(config_.store_local_summaries && payload->source == self_)) {
    if (store_.add_mbr({payload->stream, payload->source, payload->mbr,
                        payload->batch_seq, now, payload->expires})) {
      ++counters_.mbrs_stored;
    }
  }
}

void NetNode::handle_similarity_query(const routing::Message& msg) {
  const auto payload = payload_of<core::SimilarityQueryPayload>(msg);
  const core::SimilarityQuery& query = *payload->query;
  store_.add_subscription(payload->query, payload->middle_key,
                          query.issued_at + query.lifespan);
  ++counters_.subscriptions_stored;
}

void NetNode::handle_response(const routing::Message& msg) {
  const auto payload = payload_of<core::ResponsePayload>(msg);
  const auto it = results_.find(payload->query);
  if (it == results_.end()) {
    return;  // not our query (stale route)
  }
  for (const core::SimilarityMatch& match : payload->matches) {
    it->second.insert(match.stream);
  }
}

void NetNode::forward_range_copies(const routing::Message& msg) {
  const Key self_id = ring_.id(self_);
  const Key pred_id = ring_.id(ring_.predecessor_index(self_));
  const common::IdSpace& space = ring_.space();
  const bool covers_lo = space.in_half_open(msg.range_lo, pred_id, self_id);
  const bool covers_hi = space.in_half_open(msg.range_hi, pred_id, self_id);

  const bool go_up = (msg.range_dir == routing::RangeDir::kUp ||
                      msg.range_dir == routing::RangeDir::kBoth) &&
                     !covers_hi;
  const bool go_down = (msg.range_dir == routing::RangeDir::kDown ||
                        msg.range_dir == routing::RangeDir::kBoth) &&
                       !covers_lo;
  if (go_up) {
    routing::Message copy = msg;
    copy.range_internal = true;
    copy.range_dir = routing::RangeDir::kUp;
    copy.origin = self_;
    copy.hops = 1;
    const NodeIndex next = ring_.successor_index(self_);
    copy.target_key = ring_.id(next);
    if (!transport_.send(next, copy)) {
      ++counters_.send_failures;
    }
  }
  if (go_down) {
    routing::Message copy = msg;
    copy.range_internal = true;
    copy.range_dir = routing::RangeDir::kDown;
    copy.origin = self_;
    copy.hops = 1;
    const NodeIndex prev = ring_.predecessor_index(self_);
    copy.target_key = ring_.id(prev);
    if (!transport_.send(prev, copy)) {
      ++counters_.send_failures;
    }
  }
}

void NetNode::tick(sim::SimTime now) {
  const std::vector<core::SimilarityMatch> fresh = store_.match(now);
  if (fresh.empty()) {
    return;
  }
  // Group this tick's fresh matches per query and respond to each client
  // directly (divergence from the sim's middle-node aggregation — see the
  // header comment for why the matched sets are unaffected).
  std::map<core::QueryId, std::vector<core::SimilarityMatch>> by_query;
  for (const core::SimilarityMatch& match : fresh) {
    by_query[match.query].push_back(match);
  }
  for (auto& [query_id, matches] : by_query) {
    const core::IndexStore::Subscription* sub =
        store_.find_subscription(query_id);
    if (sub == nullptr || sub->query == nullptr) {
      continue;  // expired between match and push
    }
    const NodeIndex client = sub->query->client;
    core::ResponsePayload response;
    response.query = query_id;
    response.client = client;
    response.matches = std::move(matches);

    routing::Message msg;
    msg.kind = routing::MsgKind::kResponse;
    msg.origin = self_;
    msg.target_key = ring_.id(client);
    msg.sent_at = now;
    msg.trace_id = next_trace_id();
    msg.hops = client == self_ ? 0 : 1;
    msg.payload = std::make_shared<const core::ResponsePayload>(
        std::move(response));
    ++counters_.responses_sent;
    if (client == self_) {
      handle_response(msg);
    } else if (!transport_.send(client, msg)) {
      ++counters_.send_failures;
    }
  }
}

}  // namespace sdsi::net
