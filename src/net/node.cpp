#include "net/node.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace sdsi::net {

namespace {

template <typename T>
std::shared_ptr<const T> payload_of(const routing::Message& msg) {
  const auto* ptr = std::any_cast<std::shared_ptr<const T>>(&msg.payload);
  SDSI_CHECK(ptr != nullptr && *ptr != nullptr);
  return *ptr;
}

}  // namespace

NetNode::NetNode(const NetRing& ring, NodeIndex self, Transport& transport,
                 NetNodeConfig config)
    : ring_(ring),
      self_(self),
      transport_(transport),
      config_(std::move(config)),
      strategy_(core::IndexingStrategy::make(config_.strategy,
                                             config_.features, ring.space())),
      detector_(config_.reliability.detector, ring.size(), self) {
  config_.features.validate();
}

std::uint64_t NetNode::next_trace_id() noexcept {
  // Globally unique without coordination: high bits carry the node index.
  return (static_cast<std::uint64_t>(self_) + 1) << 40 | ++trace_counter_;
}

void NetNode::publish_value(StreamId stream, Sample value, sim::SimTime now) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    auto state = std::make_unique<LocalStream>(LocalStream{
        strategy_->make_summarizer(), core::MbrBatcher(config_.batching), 0});
    it = streams_.emplace(stream, std::move(state)).first;
  }
  LocalStream& state = *it->second;
  state.summarizer->push(value);
  if (!state.summarizer->ready()) {
    return;
  }
  dsp::FeatureVector features;
  if (!state.summarizer->features_into(features)) {
    return;  // degenerate window: no direction on the unit sphere
  }
  if (std::optional<dsp::Mbr> closed = state.batcher.push(features)) {
    publish_mbr(stream, state, std::move(*closed), now);
  }
}

void NetNode::publish_mbr(StreamId stream, LocalStream& state, dsp::Mbr mbr,
                          sim::SimTime now) {
  // Primary range first (acks/refresh track it alone); extra probe ranges
  // (multi-probe lsh; none for dft/ecm) go out fire-and-forget below.
  strategy_->key_map().mbr_ranges(mbr, range_scratch_);
  const auto [lo, hi] = range_scratch_.front();
  const std::vector<std::pair<Key, Key>> probes(range_scratch_.begin() + 1,
                                                range_scratch_.end());
  const sim::SimTime expires = now + config_.mbr_lifespan;
  const auto payload = std::make_shared<const core::MbrPayload>(
      core::MbrPayload{stream, self_, std::move(mbr), state.batch_seq++,
                       expires});

  if (config_.store_local_summaries) {
    if (store_.add_mbr({payload->stream, self_, payload->mbr,
                        payload->batch_seq, now, expires})) {
      ++counters_.mbrs_stored;
    }
  }

  ++counters_.mbrs_published;
  if (reliable()) {
    // Track the publication until the landing node acks it; refresh keeps
    // re-multicasting it afterwards (range replicas have no ack of their
    // own — soft state owns them).
    auto [it, inserted] = published_.try_emplace(
        std::make_pair(payload->stream, payload->batch_seq),
        PendingMbr{payload, lo, hi, false, clock_ms_, 0});
    send_mbr_multicast(it->second, now);
    send_probe_multicasts(routing::MsgKind::kMbrUpdate, payload, probes, now);
    return;
  }

  routing::Message msg;
  msg.kind = routing::MsgKind::kMbrUpdate;
  msg.origin = self_;
  msg.payload = payload;
  msg.has_range = true;
  msg.range_lo = lo;
  msg.range_hi = hi;
  msg.range_dir = routing::RangeDir::kUp;  // sequential multicast
  msg.sent_at = now;
  msg.trace_id = next_trace_id();
  route_to_key(lo, std::move(msg), now);
  send_probe_multicasts(routing::MsgKind::kMbrUpdate, payload, probes, now);
}

void NetNode::send_probe_multicasts(
    routing::MsgKind kind, std::any payload,
    const std::vector<std::pair<Key, Key>>& probes, sim::SimTime now) {
  // Extra probe arcs of a multi-probe strategy: same idempotent payload,
  // fire-and-forget (dedup at the receivers; never acked or refreshed).
  for (const auto& [plo, phi] : probes) {
    routing::Message msg;
    msg.kind = kind;
    msg.origin = self_;
    msg.payload = payload;
    msg.has_range = true;
    msg.range_lo = plo;
    msg.range_hi = phi;
    msg.range_dir = routing::RangeDir::kUp;
    msg.sent_at = now;
    msg.trace_id = next_trace_id();
    route_to_key(plo, std::move(msg), now);
  }
}

void NetNode::send_mbr_multicast(const PendingMbr& pending, sim::SimTime now) {
  routing::Message msg;
  msg.kind = routing::MsgKind::kMbrUpdate;
  msg.origin = self_;
  msg.payload = pending.payload;
  msg.has_range = true;
  msg.range_lo = pending.lo;
  msg.range_hi = pending.hi;
  msg.range_dir = routing::RangeDir::kUp;
  msg.sent_at = now;
  msg.trace_id = next_trace_id();
  route_to_key(pending.lo, std::move(msg), now);
}

void NetNode::subscribe_similarity(core::QueryId id,
                                   dsp::FeatureVector features, double radius,
                                   sim::Duration lifespan, sim::SimTime now) {
  auto query = std::make_shared<const core::SimilarityQuery>(
      core::SimilarityQuery{id, self_, std::move(features), radius, lifespan,
                            now});
  strategy_->key_map().query_ranges(query->features, radius, range_scratch_);
  const auto [lo, hi] = range_scratch_.front();
  const std::vector<std::pair<Key, Key>> probes(range_scratch_.begin() + 1,
                                                range_scratch_.end());
  const Key middle = ring_.space().midpoint(lo, hi);
  const auto payload = std::make_shared<const core::SimilarityQueryPayload>(
      core::SimilarityQueryPayload{query, middle});
  results_.try_emplace(id);
  ++counters_.queries_posed;
  if (reliable()) {
    own_queries_.push_back(OwnQuery{query, lo, hi, middle});
    send_query_multicast(own_queries_.back(), now);
    send_probe_multicasts(routing::MsgKind::kSimilarityQuery, payload, probes,
                          now);
    return;
  }

  routing::Message msg;
  msg.kind = routing::MsgKind::kSimilarityQuery;
  msg.origin = self_;
  msg.payload = payload;
  msg.has_range = true;
  msg.range_lo = lo;
  msg.range_hi = hi;
  msg.range_dir = routing::RangeDir::kUp;
  msg.sent_at = now;
  msg.trace_id = next_trace_id();
  route_to_key(lo, std::move(msg), now);
  send_probe_multicasts(routing::MsgKind::kSimilarityQuery, payload, probes,
                        now);
}

void NetNode::send_query_multicast(const OwnQuery& own, sim::SimTime now) {
  routing::Message msg;
  msg.kind = routing::MsgKind::kSimilarityQuery;
  msg.origin = self_;
  msg.payload = std::make_shared<const core::SimilarityQueryPayload>(
      core::SimilarityQueryPayload{own.query, own.middle});
  msg.has_range = true;
  msg.range_lo = own.lo;
  msg.range_hi = own.hi;
  msg.range_dir = routing::RangeDir::kUp;
  msg.sent_at = now;
  msg.trace_id = next_trace_id();
  route_to_key(own.lo, std::move(msg), now);
}

void NetNode::route_to_key(Key key, routing::Message msg, sim::SimTime now) {
  msg.target_key = ring_.space().wrap(key);
  NodeIndex dst = ring_.successor_of_key(msg.target_key);
  if (reliable()) {
    // Detour past excised peers: the first live successor inherits the dead
    // node's arc (it stores whatever lands, so range coverage survives).
    std::size_t walked = 0;
    while (dst != self_ && !detector_.usable(dst) &&
           walked + 1 < ring_.size()) {
      dst = ring_.successor_index(dst);
      ++counters_.detours;
      ++walked;
    }
  }
  if (dst == self_) {
    deliver(std::move(msg), now);
    return;
  }
  msg.hops = 1;
  if (!transport_.send(dst, msg)) {
    ++counters_.send_failures;
  }
}

void NetNode::send_direct(NodeIndex peer, routing::MsgKind kind,
                          std::any payload, sim::SimTime now) {
  if (peer >= ring_.size()) {
    // Peer indices riding in reliability payloads are untrusted once link
    // corruption is in play: a flipped byte can decode into a frame whose
    // `source`/`requester`/`from` field is garbage. Drop instead of letting
    // ring_.id() abort the process.
    ++counters_.send_failures;
    return;
  }
  routing::Message msg;
  msg.kind = kind;
  msg.origin = self_;
  msg.target_key = ring_.id(peer);
  msg.payload = std::move(payload);
  msg.sent_at = now;
  msg.trace_id = next_trace_id();
  if (peer == self_) {
    deliver(std::move(msg), now);
    return;
  }
  msg.hops = 1;
  if (!transport_.send(peer, msg)) {
    ++counters_.send_failures;
  }
}

void NetNode::deliver(routing::Message&& msg, sim::SimTime now) {
  if (reliable() && msg.origin != self_ && msg.origin < ring_.size()) {
    // Any frame is liveness evidence (epochs ride only in heartbeats).
    detector_.observe_alive(msg.origin, clock_ms_);
  }
  switch (msg.kind) {
    case routing::MsgKind::kMbrUpdate:
      handle_mbr(msg, now);
      break;
    case routing::MsgKind::kSimilarityQuery:
      handle_similarity_query(msg, now);
      break;
    case routing::MsgKind::kResponse:
      handle_response(msg, now);
      return;  // responses are point-to-point, never range-forwarded
    case routing::MsgKind::kHeartbeat:
      handle_heartbeat(msg);
      return;
    case routing::MsgKind::kMbrAck:
      handle_mbr_ack(msg);
      return;
    case routing::MsgKind::kResponseAck:
      handle_response_ack(msg);
      return;
    case routing::MsgKind::kReplicaPut:
      handle_replica_put(msg, now);
      return;
    case routing::MsgKind::kHandoffRequest:
      handle_handoff_request(msg, now);
      return;
    case routing::MsgKind::kAntiEntropyDigest:
      handle_anti_entropy_digest(msg, now);
      return;
    case routing::MsgKind::kAntiEntropyRequest:
      handle_anti_entropy_request(msg, now);
      return;
    default:
      return;  // kinds outside the net pipeline's scope: ignore
  }
  if (msg.has_range) {
    forward_range_copies(msg);
  }
}

void NetNode::handle_mbr(const routing::Message& msg, sim::SimTime now) {
  const auto payload = payload_of<core::MbrPayload>(msg);
  // The source already stored this batch at publish time; every other node
  // stores it here (the payload's absolute expiry keeps redelivery
  // idempotent, same as the sim's handle_mbr).
  bool stored = false;
  if (!(config_.store_local_summaries && payload->source == self_)) {
    stored = store_.add_mbr({payload->stream, payload->source, payload->mbr,
                             payload->batch_seq, now, payload->expires});
    if (stored) {
      ++counters_.mbrs_stored;
    }
  }
  if (!reliable() || msg.range_internal) {
    return;
  }
  // This node is the landing node (successor of the range's low end):
  // acknowledge the publication end-to-end and mirror the entry to the
  // live successor set so a crash here cannot erase it.
  if (payload->source == self_) {
    const auto it = published_.find(
        std::make_pair(payload->stream, payload->batch_seq));
    if (it != published_.end()) {
      it->second.acked = true;
    }
  } else {
    send_direct(payload->source, routing::MsgKind::kMbrAck,
                std::make_shared<const core::MbrAckPayload>(
                    core::MbrAckPayload{payload->stream, payload->batch_seq}),
                now);
    ++counters_.mbr_acks_sent;
  }
  if (!stored && !(config_.store_local_summaries && payload->source == self_)) {
    return;  // duplicate redelivery: already mirrored the first time
  }
  core::ReplicaPutPayload put;
  put.from = self_;
  put.mbrs.push_back({payload->stream, payload->source, payload->mbr,
                      payload->batch_seq, payload->expires});
  const auto shared =
      std::make_shared<const core::ReplicaPutPayload>(std::move(put));
  std::vector<NodeIndex> replicas;
  NodeIndex cursor = self_;
  while (replicas.size() < config_.reliability.replication) {
    cursor = next_live_successor(cursor);
    if (cursor == kInvalidNode ||
        std::find(replicas.begin(), replicas.end(), cursor) !=
            replicas.end()) {
      break;  // ring exhausted or wrapped
    }
    replicas.push_back(cursor);
  }
  for (const NodeIndex replica : replicas) {
    if (replica == payload->source) {
      continue;  // the source holds its own copy already
    }
    send_direct(replica, routing::MsgKind::kReplicaPut, shared, now);
    ++counters_.replica_puts_sent;
  }
}

void NetNode::handle_similarity_query(const routing::Message& msg,
                                      sim::SimTime now) {
  const auto payload = payload_of<core::SimilarityQueryPayload>(msg);
  const core::SimilarityQuery& query = *payload->query;
  const bool fresh = store_.find_subscription(query.id) == nullptr;
  store_.add_subscription(payload->query, payload->middle_key,
                          query.issued_at + query.lifespan);
  ++counters_.subscriptions_stored;
  if (!reliable() || msg.range_internal || !fresh) {
    return;
  }
  // Landing node: mirror the fresh subscription alongside the MBR replicas
  // so a crash cannot silently unsubscribe the client.
  core::ReplicaPutPayload put;
  put.from = self_;
  put.subscriptions.push_back({payload->query, payload->middle_key,
                               query.issued_at + query.lifespan});
  const auto shared =
      std::make_shared<const core::ReplicaPutPayload>(std::move(put));
  std::vector<NodeIndex> replicas;
  NodeIndex cursor = self_;
  while (replicas.size() < config_.reliability.replication) {
    cursor = next_live_successor(cursor);
    if (cursor == kInvalidNode ||
        std::find(replicas.begin(), replicas.end(), cursor) !=
            replicas.end()) {
      break;
    }
    replicas.push_back(cursor);
  }
  for (const NodeIndex replica : replicas) {
    if (replica == query.client) {
      continue;
    }
    send_direct(replica, routing::MsgKind::kReplicaPut, shared, now);
    ++counters_.replica_puts_sent;
  }
}

void NetNode::handle_response(const routing::Message& msg, sim::SimTime now) {
  const auto payload = payload_of<core::ResponsePayload>(msg);
  const auto it = results_.find(payload->query);
  if (it == results_.end()) {
    return;  // not our query (stale route)
  }
  for (const core::SimilarityMatch& match : payload->matches) {
    it->second.insert(match.stream);
  }
  if (reliable() && payload->aggregator != kInvalidNode &&
      payload->aggregator < ring_.size() && payload->aggregator != self_) {
    send_direct(payload->aggregator, routing::MsgKind::kResponseAck,
                std::make_shared<const core::ResponseAckPayload>(
                    core::ResponseAckPayload{payload->query,
                                             payload->push_seq}),
                now);
    ++counters_.response_acks_sent;
  }
}

void NetNode::handle_heartbeat(const routing::Message& msg) {
  const auto payload = payload_of<core::HeartbeatPayload>(msg);
  ++counters_.heartbeats_received;
  if (!reliable()) {
    return;
  }
  if (detector_.observe_heartbeat(payload->from, payload->epoch, clock_ms_)) {
    // The peer's process restarted with an empty store: owe it a repair
    // digest on the next anti-entropy pass.
    pending_repair_.insert(payload->from);
  }
}

void NetNode::handle_mbr_ack(const routing::Message& msg) {
  const auto payload = payload_of<core::MbrAckPayload>(msg);
  ++counters_.mbr_acks_received;
  const auto it =
      published_.find(std::make_pair(payload->stream, payload->batch_seq));
  if (it != published_.end()) {
    it->second.acked = true;
  }
}

void NetNode::handle_response_ack(const routing::Message& msg) {
  const auto payload = payload_of<core::ResponseAckPayload>(msg);
  ++counters_.response_acks_received;
  unacked_responses_.erase(std::make_pair(payload->query, payload->push_seq));
}

void NetNode::handle_replica_put(const routing::Message& msg,
                                 sim::SimTime now) {
  const auto payload = payload_of<core::ReplicaPutPayload>(msg);
  for (const core::ReplicaMbrEntry& entry : payload->mbrs) {
    if (store_.add_mbr({entry.stream, entry.source, entry.mbr,
                        entry.batch_seq, now, entry.expires})) {
      ++counters_.replica_entries_stored;
    }
  }
  for (const core::ReplicaSubscriptionEntry& entry : payload->subscriptions) {
    if (entry.query != nullptr) {
      store_.add_subscription(entry.query, entry.middle_key, entry.expires);
      ++counters_.replica_entries_stored;
    }
  }
}

void NetNode::handle_handoff_request(const routing::Message& msg,
                                     sim::SimTime now) {
  const auto payload = payload_of<core::HandoffRequestPayload>(msg);
  std::optional<core::ReplicaPutPayload> put =
      collect_arc_entries(payload->lo, payload->hi);
  if (!put.has_value()) {
    return;
  }
  put->handoff = true;
  counters_.handoff_entries_sent += put->mbrs.size() + put->subscriptions.size();
  send_direct(payload->requester, routing::MsgKind::kReplicaPut,
              std::make_shared<const core::ReplicaPutPayload>(
                  std::move(*put)),
              now);
}

void NetNode::handle_anti_entropy_digest(const routing::Message& msg,
                                         sim::SimTime now) {
  const auto payload = payload_of<core::AntiEntropyDigestPayload>(msg);
  // Pull direction: request every digest entry this store is missing.
  core::AntiEntropyRequestPayload request;
  request.requester = self_;
  for (const core::MbrBatchId& id : payload->mbr_keys) {
    if (!store_.contains_mbr(id.stream, id.batch_seq)) {
      request.mbr_keys.push_back(id);
    }
  }
  for (const core::QueryId id : payload->query_ids) {
    if (store_.find_subscription(id) == nullptr) {
      request.query_ids.push_back(id);
    }
  }
  if (!request.mbr_keys.empty() || !request.query_ids.empty()) {
    ++counters_.anti_entropy_requests;
    send_direct(payload->from, routing::MsgKind::kAntiEntropyRequest,
                std::make_shared<const core::AntiEntropyRequestPayload>(
                    std::move(request)),
                now);
  }
  // Push direction: back-fill arc entries the digest's sender is missing.
  std::optional<core::ReplicaPutPayload> put =
      collect_arc_entries(payload->lo, payload->hi);
  if (!put.has_value()) {
    return;
  }
  core::ReplicaPutPayload missing;
  missing.from = self_;
  missing.repair = true;
  for (core::ReplicaMbrEntry& entry : put->mbrs) {
    const bool listed = std::any_of(
        payload->mbr_keys.begin(), payload->mbr_keys.end(),
        [&](const core::MbrBatchId& id) {
          return id.stream == entry.stream && id.batch_seq == entry.batch_seq;
        });
    if (!listed) {
      missing.mbrs.push_back(std::move(entry));
    }
  }
  for (core::ReplicaSubscriptionEntry& entry : put->subscriptions) {
    const core::QueryId id = entry.query->id;
    const bool listed = std::find(payload->query_ids.begin(),
                                  payload->query_ids.end(),
                                  id) != payload->query_ids.end();
    if (!listed) {
      missing.subscriptions.push_back(std::move(entry));
    }
  }
  if (missing.mbrs.empty() && missing.subscriptions.empty()) {
    return;
  }
  counters_.repair_entries_sent +=
      missing.mbrs.size() + missing.subscriptions.size();
  send_direct(payload->from, routing::MsgKind::kReplicaPut,
              std::make_shared<const core::ReplicaPutPayload>(
                  std::move(missing)),
              now);
}

void NetNode::handle_anti_entropy_request(const routing::Message& msg,
                                          sim::SimTime now) {
  const auto payload = payload_of<core::AntiEntropyRequestPayload>(msg);
  core::ReplicaPutPayload put;
  put.from = self_;
  put.repair = true;
  for (const core::MbrBatchId& id : payload->mbr_keys) {
    if (const core::IndexStore::StoredMbr* entry =
            store_.find_mbr(id.stream, id.batch_seq)) {
      put.mbrs.push_back({entry->stream, entry->source, entry->mbr,
                          entry->batch_seq, entry->expires});
    }
  }
  for (const core::QueryId id : payload->query_ids) {
    if (const core::IndexStore::Subscription* sub =
            store_.find_subscription(id)) {
      put.subscriptions.push_back({sub->query, sub->middle_key, sub->expires});
    }
  }
  if (put.mbrs.empty() && put.subscriptions.empty()) {
    return;
  }
  counters_.repair_entries_sent += put.mbrs.size() + put.subscriptions.size();
  send_direct(payload->requester, routing::MsgKind::kReplicaPut,
              std::make_shared<const core::ReplicaPutPayload>(std::move(put)),
              now);
}

void NetNode::forward_range_copies(const routing::Message& msg) {
  const Key self_id = ring_.id(self_);
  const Key pred_id = ring_.id(ring_.predecessor_index(self_));
  const common::IdSpace& space = ring_.space();
  const bool covers_lo = space.in_half_open(msg.range_lo, pred_id, self_id);
  const bool covers_hi = space.in_half_open(msg.range_hi, pred_id, self_id);

  const bool go_up = (msg.range_dir == routing::RangeDir::kUp ||
                      msg.range_dir == routing::RangeDir::kBoth) &&
                     !covers_hi;
  const bool go_down = (msg.range_dir == routing::RangeDir::kDown ||
                        msg.range_dir == routing::RangeDir::kBoth) &&
                       !covers_lo;
  if (go_up) {
    routing::Message copy = msg;
    copy.range_internal = true;
    copy.range_dir = routing::RangeDir::kUp;
    copy.origin = self_;
    copy.hops = 1;
    NodeIndex next = ring_.successor_index(self_);
    if (reliable()) {
      while (next != self_ && !detector_.usable(next)) {
        next = ring_.successor_index(next);
        ++counters_.detours;
      }
    }
    if (next != self_) {
      copy.target_key = ring_.id(next);
      if (!transport_.send(next, copy)) {
        ++counters_.send_failures;
      }
    }
  }
  if (go_down) {
    routing::Message copy = msg;
    copy.range_internal = true;
    copy.range_dir = routing::RangeDir::kDown;
    copy.origin = self_;
    copy.hops = 1;
    NodeIndex prev = ring_.predecessor_index(self_);
    if (reliable()) {
      while (prev != self_ && !detector_.usable(prev)) {
        prev = ring_.predecessor_index(prev);
        ++counters_.detours;
      }
    }
    if (prev != self_) {
      copy.target_key = ring_.id(prev);
      if (!transport_.send(prev, copy)) {
        ++counters_.send_failures;
      }
    }
  }
}

void NetNode::tick(sim::SimTime now) {
  const std::vector<core::SimilarityMatch> fresh = store_.match(now);
  if (fresh.empty()) {
    return;
  }
  // Group this tick's fresh matches per query and respond to each client
  // directly (divergence from the sim's middle-node aggregation — see the
  // header comment for why the matched sets are unaffected).
  std::map<core::QueryId, std::vector<core::SimilarityMatch>> by_query;
  for (const core::SimilarityMatch& match : fresh) {
    by_query[match.query].push_back(match);
  }
  for (auto& [query_id, matches] : by_query) {
    const core::IndexStore::Subscription* sub =
        store_.find_subscription(query_id);
    if (sub == nullptr || sub->query == nullptr) {
      continue;  // expired between match and push
    }
    const NodeIndex client = sub->query->client;
    if (client >= ring_.size()) {
      continue;  // corrupted subscription frame carried a garbage client
    }
    core::ResponsePayload response;
    response.query = query_id;
    response.client = client;
    response.matches = std::move(matches);
    if (reliable() && client != self_) {
      // Acked push: the client confirms receipt, otherwise the push is
      // retransmitted from reliability_tick until retries run out.
      response.aggregator = self_;
      response.push_seq = ++push_seq_;
    }

    const auto payload =
        std::make_shared<const core::ResponsePayload>(std::move(response));
    ++counters_.responses_sent;
    if (client == self_) {
      routing::Message msg;
      msg.kind = routing::MsgKind::kResponse;
      msg.origin = self_;
      msg.target_key = ring_.id(client);
      msg.sent_at = now;
      msg.trace_id = next_trace_id();
      msg.payload = payload;
      handle_response(msg, now);
      continue;
    }
    if (reliable()) {
      const PendingResponse pending{payload, client, clock_ms_, 0};
      unacked_responses_.emplace(
          std::make_pair(payload->query, payload->push_seq), pending);
      send_response_push(pending, now);
      continue;
    }
    routing::Message msg;
    msg.kind = routing::MsgKind::kResponse;
    msg.origin = self_;
    msg.target_key = ring_.id(client);
    msg.sent_at = now;
    msg.trace_id = next_trace_id();
    msg.hops = 1;
    msg.payload = payload;
    if (!transport_.send(client, msg)) {
      ++counters_.send_failures;
    }
  }
}

void NetNode::send_response_push(const PendingResponse& pending,
                                 sim::SimTime now) {
  send_direct(pending.client, routing::MsgKind::kResponse, pending.payload,
              now);
}

void NetNode::heartbeat_tick(std::int64_t now_ms, sim::SimTime now) {
  clock_ms_ = now_ms;
  if (!reliable()) {
    return;
  }
  detector_.advance(now_ms);
  const std::int64_t period = config_.reliability.detector.heartbeat_period_ms;
  if (last_heartbeat_ms_ >= 0 && now_ms - last_heartbeat_ms_ < period) {
    return;
  }
  last_heartbeat_ms_ = now_ms;
  const auto payload = std::make_shared<const core::HeartbeatPayload>(
      core::HeartbeatPayload{self_, config_.epoch, ++heartbeat_seq_});
  for (NodeIndex peer = 0; peer < ring_.size(); ++peer) {
    if (peer == self_) {
      continue;
    }
    // Dead peers are pinged too — a restarted process answers with a higher
    // epoch, which is how the rejoin is noticed.
    send_direct(peer, routing::MsgKind::kHeartbeat, payload, now);
    ++counters_.heartbeats_sent;
  }
}

void NetNode::reliability_tick(std::int64_t now_ms, sim::SimTime now) {
  clock_ms_ = now_ms;
  if (!reliable()) {
    return;
  }
  const NetReliabilityConfig& rel = config_.reliability;

  // 1. Fast retransmit of unacked publications.
  for (auto& [key, pending] : published_) {
    if (!pending.acked && pending.retries < rel.max_retries &&
        now_ms - pending.last_sent_ms >= rel.ack_timeout_ms) {
      ++pending.retries;
      pending.last_sent_ms = now_ms;
      ++counters_.mbr_retransmits;
      send_mbr_multicast(pending, now);
    }
  }

  // 2. Periodic soft-state refresh: re-multicast everything this node owns.
  //    Receiver-side dedup makes the sweep idempotent; it is what heals
  //    range replicas and anything a detoured delivery mis-placed.
  if (now_ms - last_refresh_ms_ >= rel.refresh_period_ms) {
    last_refresh_ms_ = now_ms;
    ++counters_.refresh_rounds;
    for (auto& [key, pending] : published_) {
      ++counters_.mbr_refreshes;
      send_mbr_multicast(pending, now);
    }
    for (const OwnQuery& own : own_queries_) {
      if (own.query->issued_at + own.query->lifespan <= now) {
        continue;  // expired: let it die
      }
      ++counters_.query_refreshes;
      send_query_multicast(own, now);
    }
  }

  // 3. Retransmit unacked match pushes; give up after max_retries (a client
  //    that stays gone is excised by the detector anyway).
  for (auto it = unacked_responses_.begin(); it != unacked_responses_.end();) {
    PendingResponse& pending = it->second;
    if (now_ms - pending.last_sent_ms >= rel.ack_timeout_ms) {
      if (pending.retries >= rel.max_retries) {
        it = unacked_responses_.erase(it);
        continue;
      }
      ++pending.retries;
      pending.last_sent_ms = now_ms;
      ++counters_.response_retransmits;
      send_response_push(pending, now);
    }
    ++it;
  }

  // 4. Anti-entropy digests toward both live ring neighbors, plus any peer
  //    whose rejoin was observed since the last pass.
  if (now_ms - last_anti_entropy_ms_ >= rel.anti_entropy_period_ms) {
    last_anti_entropy_ms_ = now_ms;
    ++counters_.anti_entropy_rounds;
    const NodeIndex up = next_live_successor(self_);
    if (up != kInvalidNode) {
      send_digest_to(up, now);
    }
    const NodeIndex down = next_live_predecessor(self_);
    if (down != kInvalidNode && down != up) {
      send_digest_to(down, now);
    }
    for (const NodeIndex peer : pending_repair_) {
      if (peer != up && peer != down && detector_.usable(peer)) {
        send_digest_to(peer, now);
      }
    }
    pending_repair_.clear();
  }
}

void NetNode::request_handoff(sim::SimTime now) {
  if (!reliable()) {
    return;
  }
  const auto payload = std::make_shared<const core::HandoffRequestPayload>(
      core::HandoffRequestPayload{self_,
                                  ring_.id(ring_.predecessor_index(self_)),
                                  ring_.id(self_)});
  const NodeIndex up = next_live_successor(self_);
  if (up != kInvalidNode) {
    ++counters_.handoff_requests_sent;
    send_direct(up, routing::MsgKind::kHandoffRequest, payload, now);
  }
  const NodeIndex down = next_live_predecessor(self_);
  if (down != kInvalidNode && down != up) {
    ++counters_.handoff_requests_sent;
    send_direct(down, routing::MsgKind::kHandoffRequest, payload, now);
  }
}

void NetNode::send_digest_to(NodeIndex peer, sim::SimTime now) {
  // Digest the entries relevant to `peer`'s owned arc (its static ring
  // predecessor to itself; a dead predecessor only widens what the peer is
  // offered, never narrows it).
  const Key lo = ring_.id(ring_.predecessor_index(peer));
  const Key hi = ring_.id(peer);
  core::AntiEntropyDigestPayload digest;
  digest.from = self_;
  digest.lo = lo;
  digest.hi = hi;
  for (const core::IndexStore::StoredMbr& entry : store_.mbrs()) {
    const auto [rlo, rhi] = strategy_->key_map().mbr_range(entry.mbr);
    if (range_intersects_arc(rlo, rhi, lo, hi)) {
      digest.mbr_keys.push_back({entry.stream, entry.batch_seq});
    }
  }
  for (const auto& [id, sub] : store_.subscriptions()) {
    if (sub.query == nullptr) {
      continue;
    }
    const auto [rlo, rhi] =
        strategy_->key_map().query_range(sub.query->features,
                                         sub.query->radius);
    if (range_intersects_arc(rlo, rhi, lo, hi)) {
      digest.query_ids.push_back(id);
    }
  }
  send_direct(peer, routing::MsgKind::kAntiEntropyDigest,
              std::make_shared<const core::AntiEntropyDigestPayload>(
                  std::move(digest)),
              now);
}

std::optional<core::ReplicaPutPayload> NetNode::collect_arc_entries(Key lo,
                                                                    Key hi) {
  core::ReplicaPutPayload put;
  put.from = self_;
  for (const core::IndexStore::StoredMbr& entry : store_.mbrs()) {
    const auto [rlo, rhi] = strategy_->key_map().mbr_range(entry.mbr);
    if (range_intersects_arc(rlo, rhi, lo, hi)) {
      put.mbrs.push_back({entry.stream, entry.source, entry.mbr,
                          entry.batch_seq, entry.expires});
    }
  }
  for (const auto& [id, sub] : store_.subscriptions()) {
    if (sub.query == nullptr) {
      continue;
    }
    const auto [rlo, rhi] =
        strategy_->key_map().query_range(sub.query->features,
                                         sub.query->radius);
    if (range_intersects_arc(rlo, rhi, lo, hi)) {
      put.subscriptions.push_back({sub.query, sub.middle_key, sub.expires});
    }
  }
  if (put.mbrs.empty() && put.subscriptions.empty()) {
    return std::nullopt;
  }
  return put;
}

bool NetNode::range_intersects_arc(Key lo, Key hi, Key a, Key b) const {
  const common::IdSpace& space = ring_.space();
  // [lo, hi] meets (a, b] iff the range starts inside the arc, ends inside
  // it, or swallows it whole.
  return space.in_half_open(lo, a, b) || space.in_half_open(hi, a, b) ||
         space.in_closed(b, lo, hi);
}

NodeIndex NetNode::next_live_successor(NodeIndex from) {
  NodeIndex n = from;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    n = ring_.successor_index(n);
    if (n != self_ && detector_.usable(n)) {
      return n;
    }
  }
  return kInvalidNode;
}

NodeIndex NetNode::next_live_predecessor(NodeIndex from) {
  NodeIndex n = from;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    n = ring_.predecessor_index(n);
    if (n != self_ && detector_.usable(n)) {
      return n;
    }
  }
  return kInvalidNode;
}

}  // namespace sdsi::net
