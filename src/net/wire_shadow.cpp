#include "net/wire_shadow.hpp"

#include <utility>
#include <vector>

#include "common/check.hpp"
#include "net/wire.hpp"

namespace sdsi::net {

std::shared_ptr<const WireShadowStats> install_wire_shadow(
    routing::RoutingSystem& routing) {
  auto stats = std::make_shared<WireShadowStats>();
  routing.set_transmit_filter([stats](routing::Message& msg) {
    const std::vector<std::uint8_t> wire = encode_frame(msg);
    routing::Message decoded;
    const DecodeResult result = decode_frame(wire, &decoded);
    SDSI_CHECK(result == DecodeResult::kOk);
    // Byte-level idempotence: re-encoding the decoded copy must reproduce
    // the original frame exactly, or the codec lost information.
    SDSI_CHECK(encode_frame(decoded) == wire);
    ++stats->frames;
    stats->bytes += wire.size();
    msg = std::move(decoded);
  });
  return stats;
}

}  // namespace sdsi::net
