#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "net/wire.hpp"

namespace sdsi::net {

namespace {

void set_nonblocking_cloexec(int fd) {
  SDSI_CHECK(fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK) == 0);
  SDSI_CHECK(fcntl(fd, F_SETFD, FD_CLOEXEC) == 0);
}

}  // namespace

SocketTransport::SocketTransport(std::uint16_t port) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  SDSI_CHECK(epoll_fd_ >= 0);

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  SDSI_CHECK(listen_fd_ >= 0);
  set_nonblocking_cloexec(listen_fd_);
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  SDSI_CHECK(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0);
  SDSI_CHECK(listen(listen_fd_, SOMAXCONN) == 0);

  socklen_t len = sizeof(addr);
  SDSI_CHECK(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         &len) == 0);
  listen_port_ = ntohs(addr.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  SDSI_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
}

SocketTransport::~SocketTransport() {
  for (auto& [peer_index, peer] : peers_) {
    if (peer.fd >= 0) {
      close(peer.fd);
    }
  }
  for (auto& [fd, conn] : inbound_by_fd_) {
    close(fd);
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

void SocketTransport::set_peer(NodeIndex peer, const std::string& host,
                               std::uint16_t port) {
  Peer& entry = peers_[peer];
  entry.host = host;
  entry.port = port;
}

bool SocketTransport::connected(NodeIndex peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.fd >= 0 && !it->second.connecting;
}

bool SocketTransport::send(NodeIndex peer, const routing::Message& msg) {
  if (peers_.find(peer) == peers_.end()) {
    return false;
  }
  return enqueue_frame(peer, encode_frame(msg));
}

bool SocketTransport::send_raw(NodeIndex peer,
                               std::span<const std::uint8_t> frame) {
  if (peers_.find(peer) == peers_.end()) {
    return false;
  }
  return enqueue_frame(peer, frame);
}

bool SocketTransport::enqueue_frame(NodeIndex peer,
                                    std::span<const std::uint8_t> frame) {
  Peer& entry = peers_[peer];
  if (entry.outbox.size() - entry.out_offset + frame.size() >
      kMaxOutboxBytes) {
    ++stats_.dropped_overflow;
    return true;  // peer known; the frame itself is accounted as shed
  }
  entry.outbox.insert(entry.outbox.end(), frame.begin(), frame.end());
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();

  if (entry.fd < 0 && !entry.connecting &&
      Clock::now() >= entry.next_attempt) {
    start_connect(peer);
  } else if (entry.fd >= 0 && !entry.connecting) {
    flush_outbox(peer);
  }
  return true;
}

void SocketTransport::start_connect(NodeIndex peer_index) {
  Peer& peer = peers_[peer_index];
  SDSI_CHECK(peer.fd < 0);
  ++stats_.reconnect_attempts;

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    fail_connection(peer_index);
    return;
  }
  set_nonblocking_cloexec(fd);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    fail_connection(peer_index);
    return;
  }
  const int rc =
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    fail_connection(peer_index);
    return;
  }
  peer.fd = fd;
  peer.connecting = (rc != 0);
  outbound_by_fd_[fd] = peer_index;

  epoll_event ev{};
  ev.events = EPOLLOUT;  // writable = connect finished (or ready to flush)
  ev.data.fd = fd;
  SDSI_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
  if (!peer.connecting) {
    on_connect_ready(peer_index);
  }
}

void SocketTransport::on_connect_ready(NodeIndex peer_index) {
  Peer& peer = peers_[peer_index];
  peer.connecting = false;
  peer.backoff_ms = kBackoffStartMs;
  ++stats_.connects;
  flush_outbox(peer_index);
}

void SocketTransport::fail_connection(NodeIndex peer_index) {
  Peer& peer = peers_[peer_index];
  if (peer.fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, peer.fd, nullptr);
    outbound_by_fd_.erase(peer.fd);
    close(peer.fd);
    peer.fd = -1;
  }
  peer.connecting = false;
  // Jittered (when seeded): uniform in [½d, 1½d) around the current ladder
  // step d, so peers that lost the same node do not retry in lockstep. The
  // draw comes from this endpoint's own seeded stream — reconnect timing is
  // deterministic per node, not shared across nodes.
  int delay_ms = peer.backoff_ms;
  if (backoff_jitter_) {
    delay_ms = peer.backoff_ms / 2 +
               static_cast<int>(backoff_rng_.bounded(
                   static_cast<std::uint32_t>(peer.backoff_ms)));
  }
  peer.next_attempt = Clock::now() + std::chrono::milliseconds(delay_ms);
  peer.backoff_ms = std::min(peer.backoff_ms * 2, kBackoffMaxMs);
}

void SocketTransport::flush_outbox(NodeIndex peer_index) {
  Peer& peer = peers_[peer_index];
  if (peer.fd < 0 || peer.connecting) {
    return;
  }
  while (peer.out_offset < peer.outbox.size()) {
    // MSG_NOSIGNAL: a peer that died mid-run must surface as EPIPE (handled
    // below via fail_connection), not as a process-killing SIGPIPE.
    const ssize_t n =
        ::send(peer.fd, peer.outbox.data() + peer.out_offset,
               peer.outbox.size() - peer.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      peer.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;  // kernel buffer full; EPOLLOUT will resume us
    }
    fail_connection(peer_index);  // peer went away; keep outbox, retry later
    return;
  }
  if (peer.out_offset == peer.outbox.size()) {
    peer.outbox.clear();
    peer.out_offset = 0;
  } else if (peer.out_offset > (1u << 20)) {
    // Compact the consumed prefix so a long-lived congested peer does not
    // pin the high-water mark forever.
    peer.outbox.erase(peer.outbox.begin(),
                      peer.outbox.begin() +
                          static_cast<std::ptrdiff_t>(peer.out_offset));
    peer.out_offset = 0;
  }
  epoll_event ev{};
  ev.events = peer.outbox.empty() ? 0u : EPOLLOUT;
  ev.data.fd = peer.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, peer.fd, &ev);
}

void SocketTransport::accept_ready() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or transient error; epoll will re-arm
    }
    set_nonblocking_cloexec(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Inbound>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    SDSI_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
    inbound_by_fd_[fd] = std::move(conn);
  }
}

bool SocketTransport::drain_frames(std::vector<std::uint8_t>& inbuf) {
  std::size_t consumed = 0;
  while (inbuf.size() - consumed >= kWireHeaderSize) {
    const std::span<const std::uint8_t> rest(inbuf.data() + consumed,
                                             inbuf.size() - consumed);
    FrameHeader header;
    const DecodeResult header_result =
        decode_header(rest.first(kWireHeaderSize), &header);
    if (header_result != DecodeResult::kOk &&
        header_result != DecodeResult::kTruncated) {
      // Unframeable stream: without a trustworthy payload_len there is no
      // next-frame boundary to resync to.
      ++stats_.decode_rejects;
      return false;
    }
    if (header.payload_len > kMaxPayloadLen) {
      ++stats_.decode_rejects;
      return false;
    }
    const std::size_t frame_len = kWireHeaderSize + header.payload_len;
    if (rest.size() < frame_len) {
      break;  // wait for the rest of the frame
    }
    routing::Message msg;
    const DecodeResult result = decode_frame(rest.first(frame_len), &msg);
    if (result == DecodeResult::kOk) {
      ++stats_.frames_received;
      stats_.bytes_received += frame_len;
      if (deliver_) {
        deliver_(std::move(msg));
      }
    } else {
      ++stats_.decode_rejects;  // framed but unparseable: skip this frame
    }
    consumed += frame_len;
  }
  if (consumed > 0) {
    inbuf.erase(inbuf.begin(),
                inbuf.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return true;
}

void SocketTransport::read_ready(Inbound& conn) {
  while (true) {
    std::uint8_t chunk[16384];
    const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn.inbuf.insert(conn.inbuf.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    // EOF or hard error: parse what we have, then drop the connection.
    drain_frames(conn.inbuf);
    close_inbound(conn.fd);
    return;
  }
  if (!drain_frames(conn.inbuf)) {
    close_inbound(conn.fd);
  }
}

void SocketTransport::close_inbound(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  close(fd);
  inbound_by_fd_.erase(fd);
}

void SocketTransport::poll(int budget_ms) {
  // Retry due outbound connections (frames may be queued behind a backoff).
  const Clock::time_point now = Clock::now();
  for (auto& [peer_index, peer] : peers_) {
    if (peer.fd < 0 && !peer.outbox.empty() && now >= peer.next_attempt) {
      start_connect(peer_index);
    }
  }

  epoll_event events[64];
  const int n = epoll_wait(epoll_fd_, events, 64, budget_ms);
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t mask = events[i].events;
    if (fd == listen_fd_) {
      accept_ready();
      continue;
    }
    if (const auto out = outbound_by_fd_.find(fd);
        out != outbound_by_fd_.end()) {
      const NodeIndex peer_index = out->second;
      Peer& peer = peers_[peer_index];
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0) {
        fail_connection(peer_index);
        continue;
      }
      if (peer.connecting) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          fail_connection(peer_index);
          continue;
        }
        on_connect_ready(peer_index);
      } else if ((mask & EPOLLOUT) != 0) {
        flush_outbox(peer_index);
      }
      continue;
    }
    if (const auto in = inbound_by_fd_.find(fd); in != inbound_by_fd_.end()) {
      if ((mask & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
        read_ready(*in->second);
      }
    }
  }
}

}  // namespace sdsi::net
