// The pluggable transport boundary: how a NetNode's frames reach its peers.
//
// Two implementations exist (docs/ARCHITECTURE.md "Transport layer"):
//  - SimTransport: in-process fabric over the discrete-event kernel —
//    deterministic, instant, used by the equivalence tests;
//  - SocketTransport: epoll-based async TCP with length-prefixed v1 frames,
//    per-peer write queues and reconnect-with-backoff (tools/sdsi_node).
//
// A transport moves already-addressed frames between node endpoints; all
// routing decisions (successor lookup, range-multicast fan-out) stay above
// it in net::NetNode, and every frame crosses the v1 codec of net/wire.hpp
// regardless of implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "common/types.hpp"
#include "routing/message.hpp"

namespace sdsi::net {

class Transport {
 public:
  /// Upcall for every frame that arrives addressed to this endpoint. The
  /// message has already crossed the wire codec (decode validated it).
  using DeliverFn = std::function<void(routing::Message&&)>;

  virtual ~Transport() = default;

  /// Queues one message to `peer` (a node index in the ring's address book).
  /// Returns false when the peer is unknown; delivery is asynchronous and
  /// at-most-once — a transport does not retransmit, the middleware's
  /// soft-state machinery owns end-to-end reliability.
  virtual bool send(NodeIndex peer, const routing::Message& msg) = 0;

  /// Queues pre-encoded frame bytes to `peer` verbatim, bypassing this
  /// endpoint's encoder. This is the seam the fault-injection layer uses to
  /// put damaged or delayed bytes on the wire: the receiving endpoint runs
  /// its normal codec and must survive (and account for) whatever arrives.
  /// Default: unsupported.
  virtual bool send_raw(NodeIndex peer, std::span<const std::uint8_t> frame) {
    (void)peer;
    (void)frame;
    return false;
  }

  virtual void set_deliver(DeliverFn fn) = 0;

  /// Drives I/O forward (connect/read/write/deliver), waiting at most
  /// `budget_ms` for readiness. SimTransport delivers through the sim
  /// scheduler instead and ignores the budget.
  virtual void poll(int budget_ms) = 0;

  /// Endpoints this transport can address (including self).
  virtual std::size_t peer_count() const = 0;
};

}  // namespace sdsi::net
