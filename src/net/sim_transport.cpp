#include "net/sim_transport.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "net/wire.hpp"

namespace sdsi::net {

SimTransport::SimTransport(SimFabric& fabric, NodeIndex self)
    : fabric_(fabric), self_(self) {
  fabric.attach(self, this);
}

bool SimTransport::send(NodeIndex peer, const routing::Message& msg) {
  if (peer >= fabric_.endpoints_.size() ||
      fabric_.endpoints_[peer] == nullptr) {
    return false;
  }
  // Model the wire faithfully: the peer receives the decoded form of the
  // encoded bytes, never the in-memory original (shared_ptr payloads are
  // deep-copied by the codec exactly as a socket hop would).
  const std::vector<std::uint8_t> wire = encode_frame(msg);
  auto decoded = std::make_shared<routing::Message>();
  const DecodeResult result = decode_frame(wire, decoded.get());
  SDSI_CHECK(result == DecodeResult::kOk);
  ++fabric_.frames_;
  fabric_.bytes_ += wire.size();

  SimTransport* endpoint = fabric_.endpoints_[peer];
  fabric_.sim_.schedule_after(fabric_.hop_latency_, [endpoint, decoded] {
    if (endpoint->deliver_) {
      endpoint->deliver_(std::move(*decoded));
    }
  });
  return true;
}

bool SimTransport::send_raw(NodeIndex peer,
                            std::span<const std::uint8_t> frame) {
  if (peer >= fabric_.endpoints_.size() ||
      fabric_.endpoints_[peer] == nullptr) {
    return false;
  }
  ++fabric_.frames_;
  fabric_.bytes_ += frame.size();
  // The receiving side of the hop runs the codec, exactly as a socket
  // endpoint would on arrival; damaged bytes become a counted drop.
  auto decoded = std::make_shared<routing::Message>();
  if (decode_frame(frame, decoded.get()) != DecodeResult::kOk) {
    ++fabric_.decode_rejects_;
    if (fabric_.drop_hook_) {
      fabric_.drop_hook_(fault::DropCause::kMalformedFrame);
    }
    return true;  // accepted by the medium; lost at the receiver, accounted
  }
  SimTransport* endpoint = fabric_.endpoints_[peer];
  fabric_.sim_.schedule_after(fabric_.hop_latency_, [endpoint, decoded] {
    if (endpoint->deliver_) {
      endpoint->deliver_(std::move(*decoded));
    }
  });
  return true;
}

}  // namespace sdsi::net
