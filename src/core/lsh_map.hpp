// LSH content-to-key map: signed random projections (SRP-LSH) route similar
// streams to the same ring arc (Bahmani, Goel, Shinde — "Efficient
// Distributed Locality Sensitive Hashing", PAPERS.md).
//
// `planes` seeded unit hyperplanes split the feature space into 2^planes
// sign-signature buckets; each bucket owns one equal arc of the identifier
// circle. Keys depend only on (seed, dims, id-space bits) — never on ring
// membership — so churn moves arcs between nodes without ever re-keying
// content (the bucket-stability property tests/test_lsh_keymap.cpp pins).
//
// Ranges: the primary range is the center signature's arc. Queries
// multi-probe — every plane whose |margin| <= radius could flip somewhere in
// the similarity ball, so the lowest-margin single-bit neighbors are probed
// too, capped at max_probes. Boxes probe every plane their projection
// interval straddles. The cap deliberately trades recall for routed
// messages; the recall oracle and bench_strategies quantify the trade.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/strategy.hpp"

namespace sdsi::core {

class LshKeyMap final : public ContentKeyMap {
 public:
  /// `dims` is the flattened real dimensionality of the feature space
  /// (2 * num_coefficients for complex synopses).
  LshKeyMap(const LshOptions& options, std::size_t dims,
            common::IdSpace space);

  Key key_for(const dsp::FeatureVector& features) const override;
  std::pair<Key, Key> mbr_range(const dsp::Mbr& mbr) const override;
  std::pair<Key, Key> query_range(const dsp::FeatureVector& features,
                                  double radius) const override;
  void mbr_ranges(const dsp::Mbr& mbr,
                  std::vector<std::pair<Key, Key>>& out) const override;
  void query_ranges(const dsp::FeatureVector& features, double radius,
                    std::vector<std::pair<Key, Key>>& out) const override;

  const LshOptions& options() const noexcept { return options_; }
  std::size_t dims() const noexcept { return dims_; }

  /// The b-bit sign signature of a point (bit p = sign of plane p's
  /// projection).
  std::uint64_t signature_of(const dsp::FeatureVector& features) const;
  /// Signed distance of a point to plane `plane` (unit normals, so the
  /// margin is a true distance).
  double margin_of(const dsp::FeatureVector& features,
                   std::size_t plane) const;
  /// The ring arc owned by one bucket.
  std::pair<Key, Key> bucket_arc(std::uint64_t bucket) const;

 private:
  double project(std::span<const dsp::Complex> coeffs, std::size_t p) const;
  std::uint64_t signature(const dsp::FeatureVector& features,
                          std::vector<double>& margins) const;
  std::uint64_t box_signature(const dsp::Mbr& mbr,
                              std::vector<bool>& straddles) const;
  Key arc_midpoint(std::uint64_t bucket) const;

  LshOptions options_;
  std::size_t dims_;
  common::IdSpace space_;
  std::vector<double> planes_;  // planes x dims, row-major unit normals
};

}  // namespace sdsi::core
