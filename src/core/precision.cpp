#include "core/precision.hpp"

#include <algorithm>

namespace sdsi::core {

double AdaptivePrecisionController::observe(bool emitted) {
  ++vectors_in_window_;
  if (emitted) {
    ++emissions_in_window_;
  }
  if (vectors_in_window_ >= options_.window) {
    const double rate = static_cast<double>(emissions_in_window_);
    if (rate > options_.target_rate) {
      // Updates too frequent: widen the boxes (grow fast — overload hurts).
      extent_ = std::min(extent_ * options_.grow_factor, options_.max_extent);
    } else if (rate < 0.5 * options_.target_rate) {
      // Plenty of slack: claw precision back (shrink gently).
      extent_ =
          std::max(extent_ * options_.shrink_factor, options_.min_extent);
    }
    vectors_in_window_ = 0;
    emissions_in_window_ = 0;
    ++adaptations_;
  }
  return extent_;
}

}  // namespace sdsi::core
