#include "core/lsh_map.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace sdsi::core {

LshKeyMap::LshKeyMap(const LshOptions& options, std::size_t dims,
                     common::IdSpace space)
    : options_(options), dims_(dims), space_(space) {
  SDSI_CHECK(options_.planes >= 1);
  SDSI_CHECK(options_.planes <= space.bits());
  SDSI_CHECK(options_.planes < 64u);
  SDSI_CHECK(options_.max_probes >= 1);
  SDSI_CHECK(dims_ >= 1);
  common::Pcg32 rng(options_.seed, 0x9a1e5u);
  planes_.resize(options_.planes * dims_);
  for (std::size_t p = 0; p < options_.planes; ++p) {
    double norm_sq = 0.0;
    for (std::size_t d = 0; d < dims_; ++d) {
      const double g = rng.normal();
      planes_[p * dims_ + d] = g;
      norm_sq += g * g;
    }
    const double inv = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 1.0;
    for (std::size_t d = 0; d < dims_; ++d) {
      planes_[p * dims_ + d] *= inv;  // unit normal: margin == distance
    }
  }
}

double LshKeyMap::project(std::span<const dsp::Complex> coeffs,
                          std::size_t p) const {
  double dot = 0.0;
  for (std::size_t c = 0; c < coeffs.size(); ++c) {
    const std::size_t d = 2 * c;
    if (d < dims_) {
      dot += planes_[p * dims_ + d] * coeffs[c].real();
    }
    if (d + 1 < dims_) {
      dot += planes_[p * dims_ + d + 1] * coeffs[c].imag();
    }
  }
  return dot;
}

std::uint64_t LshKeyMap::signature(const dsp::FeatureVector& features,
                                   std::vector<double>& margins) const {
  margins.assign(options_.planes, 0.0);
  std::uint64_t sig = 0;
  for (std::size_t p = 0; p < options_.planes; ++p) {
    margins[p] = project(features.coefficients(), p);
    if (margins[p] >= 0.0) {
      sig |= 1ull << p;
    }
  }
  return sig;
}

std::uint64_t LshKeyMap::box_signature(const dsp::Mbr& mbr,
                                       std::vector<bool>& straddles) const {
  straddles.assign(options_.planes, false);
  const std::span<const double> low = mbr.low();
  const std::span<const double> high = mbr.high();
  std::uint64_t sig = 0;
  for (std::size_t p = 0; p < options_.planes; ++p) {
    // Interval arithmetic: min/max of the projection over the box corners.
    double lo = 0.0;
    double hi = 0.0;
    const std::size_t limit = std::min(dims_, low.size());
    for (std::size_t d = 0; d < limit; ++d) {
      const double w = planes_[p * dims_ + d];
      if (w >= 0.0) {
        lo += w * low[d];
        hi += w * high[d];
      } else {
        lo += w * high[d];
        hi += w * low[d];
      }
    }
    if (lo + hi >= 0.0) {
      sig |= 1ull << p;
    }
    straddles[p] = lo < 0.0 && hi >= 0.0;
  }
  return sig;
}

std::pair<Key, Key> LshKeyMap::bucket_arc(std::uint64_t bucket) const {
  const unsigned shift =
      space_.bits() - static_cast<unsigned>(options_.planes);
  const Key lo = space_.wrap(bucket << shift);
  const Key hi = space_.wrap(((bucket + 1) << shift) - 1);
  return {lo, hi};
}

Key LshKeyMap::arc_midpoint(std::uint64_t bucket) const {
  const auto [lo, hi] = bucket_arc(bucket);
  return space_.midpoint(lo, hi);
}

Key LshKeyMap::key_for(const dsp::FeatureVector& features) const {
  std::vector<double> margins;
  return arc_midpoint(signature(features, margins));
}

std::pair<Key, Key> LshKeyMap::mbr_range(const dsp::Mbr& mbr) const {
  std::vector<bool> straddles;
  return bucket_arc(box_signature(mbr, straddles));
}

std::pair<Key, Key> LshKeyMap::query_range(const dsp::FeatureVector& features,
                                           double radius) const {
  (void)radius;  // the primary probe is the center's bucket
  std::vector<double> margins;
  return bucket_arc(signature(features, margins));
}

void LshKeyMap::mbr_ranges(const dsp::Mbr& mbr,
                           std::vector<std::pair<Key, Key>>& out) const {
  out.clear();
  std::vector<bool> straddles;
  const std::uint64_t primary = box_signature(mbr, straddles);
  out.push_back(bucket_arc(primary));
  // The box genuinely spans every sign combination of its straddled planes,
  // so full coverage enumerates all subsets of the straddle mask (a corner
  // may differ from the center signature in several planes at once). Walk
  // subsets in increasing popcount — nearer buckets first — so the
  // max_probes cap cuts the least likely combinations; index order breaks
  // ties deterministically.
  std::vector<std::size_t> crossed;
  for (std::size_t p = 0; p < options_.planes; ++p) {
    if (straddles[p]) {
      crossed.push_back(p);
    }
  }
  const std::size_t subsets = std::size_t{1} << crossed.size();
  for (std::size_t flips = 1;
       flips <= crossed.size() && out.size() < options_.max_probes; ++flips) {
    for (std::size_t mask = 1;
         mask < subsets && out.size() < options_.max_probes; ++mask) {
      if (static_cast<std::size_t>(std::popcount(mask)) != flips) {
        continue;
      }
      std::uint64_t sig = primary;
      for (std::size_t i = 0; i < crossed.size(); ++i) {
        if ((mask >> i) & 1u) {
          sig ^= 1ull << crossed[i];
        }
      }
      out.push_back(bucket_arc(sig));
    }
  }
}

void LshKeyMap::query_ranges(const dsp::FeatureVector& features, double radius,
                             std::vector<std::pair<Key, Key>>& out) const {
  out.clear();
  std::vector<double> margins;
  const std::uint64_t primary = signature(features, margins);
  out.push_back(bucket_arc(primary));
  // Planes the similarity ball crosses, most ambiguous (smallest margin)
  // first; ties break on plane index for determinism.
  std::vector<std::size_t> crossed;
  for (std::size_t p = 0; p < options_.planes; ++p) {
    if (std::abs(margins[p]) <= radius) {
      crossed.push_back(p);
    }
  }
  std::sort(crossed.begin(), crossed.end(), [&](std::size_t a, std::size_t b) {
    const double ma = std::abs(margins[a]);
    const double mb = std::abs(margins[b]);
    return ma != mb ? ma < mb : a < b;
  });
  for (const std::size_t p : crossed) {
    if (out.size() >= options_.max_probes) {
      break;
    }
    out.push_back(bucket_arc(primary ^ (1ull << p)));
  }
}

std::uint64_t LshKeyMap::signature_of(const dsp::FeatureVector& features) const {
  std::vector<double> margins;
  return signature(features, margins);
}

double LshKeyMap::margin_of(const dsp::FeatureVector& features,
                            std::size_t plane) const {
  SDSI_CHECK(plane < options_.planes);
  std::vector<double> margins;
  (void)signature(features, margins);
  return margins[plane];
}

}  // namespace sdsi::core
