#include "core/batcher.hpp"

#include <algorithm>

namespace sdsi::core {

bool MbrBatcher::would_exceed_extent(
    const dsp::FeatureVector& features) const {
  // Allocation-free: adaptive mode runs this once per feature vector.
  if (current_.empty()) {
    return false;
  }
  const auto low = current_.low();
  const auto high = current_.high();
  for (std::size_t i = 0; i < features.size(); ++i) {
    const double coords[2] = {features[i].real(), features[i].imag()};
    for (std::size_t part = 0; part < 2; ++part) {
      const std::size_t d = 2 * i + part;
      const double new_low = std::min(low[d], coords[part]);
      const double new_high = std::max(high[d], coords[part]);
      if (new_high - new_low > options_.max_extent) {
        return true;
      }
    }
  }
  return false;
}

std::optional<dsp::Mbr> MbrBatcher::push(const dsp::FeatureVector& features) {
  ++vectors_;
  std::optional<dsp::Mbr> closed;
  if (options_.mode == Mode::kAdaptive &&
      (would_exceed_extent(features) ||
       pending_count_ >= options_.max_batch)) {
    closed = emit();
  }
  current_.extend(features);
  ++pending_count_;
  if (options_.mode == Mode::kFixedCount &&
      pending_count_ >= options_.batch_size) {
    SDSI_CHECK(!closed.has_value());
    closed = emit();
  }
  return closed;
}

std::optional<dsp::Mbr> MbrBatcher::flush() {
  if (pending_count_ == 0) {
    return std::nullopt;
  }
  return emit();
}

std::optional<dsp::Mbr> MbrBatcher::emit() {
  if (pending_count_ == 0) {
    return std::nullopt;
  }
  dsp::Mbr finished = std::move(current_);
  current_ = dsp::Mbr();
  pending_count_ = 0;
  ++batches_;
  return finished;
}

}  // namespace sdsi::core
