// Instrumentation for the paper's three evaluation characteristics:
//  - per-node message load, split into the seven components of Fig 6(a);
//  - message overhead per input event, the six components of Fig 7;
//  - hops traversed per message type, Fig 8.
//
// The collector plugs into the routing layer as a MetricsHook, so every
// origination, overlay transit, and delivery is observed exactly once.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "obs/log_histogram.hpp"
#include "obs/timeseries.hpp"
#include "routing/api.hpp"

namespace sdsi::core {

/// Application message tags carried in routing::Message::kind. The enum
/// itself lives with the envelope (routing/message.hpp) so the wire codecs
/// (src/net/wire.hpp), the metrics labels below, and the frame header can't
/// drift; this alias keeps the historical core::MsgKind spelling working.
using MsgKind = routing::MsgKind;

/// The seven per-node load components of Fig 6(a), plus the reliability
/// control traffic (acks) our self-healing extension adds on top of the
/// paper's protocol, plus the replication layer's traffic (mirrors,
/// handoffs, anti-entropy, aggregator-state mirrors).
enum class LoadComponent : std::size_t {
  kMbrSource = 0,        // (a) MBRs originated by the node as a stream source
  kMbrInternal = 1,      // (b) extra copies when an MBR range spans nodes
  kMbrTransit = 2,       // (c) MBRs relayed by intermediate overlay nodes
  kQueries = 3,          // (d) all query messages
  kResponses = 4,        // (e) responses from the notifying node to clients
  kResponsesInternal = 5,// (f) neighbor-to-neighbor similarity digests
  kResponsesTransit = 6, // (g) responses relayed by intermediate nodes
  kControl = 7,          // (h) acks: MBR storage + response delivery
  kReplication = 8,      // (i) replication layer traffic
  kCount = 9,
};

/// Human label for the Fig 6(a) table rows. Out-of-range values abort (every
/// load event must belong to a named component) instead of rendering a
/// silent placeholder row.
inline const char* load_component_name(LoadComponent c) {
  switch (c) {
    case LoadComponent::kMbrSource: return "MBRs";
    case LoadComponent::kMbrInternal: return "MBRs internal";
    case LoadComponent::kMbrTransit: return "MBRs in transit";
    case LoadComponent::kQueries: return "Queries";
    case LoadComponent::kResponses: return "Responses";
    case LoadComponent::kResponsesInternal: return "Responses internal";
    case LoadComponent::kResponsesTransit: return "Responses in transit";
    case LoadComponent::kControl: return "Control (acks)";
    case LoadComponent::kReplication: return "Replication";
    case LoadComponent::kCount: break;
  }
  SDSI_CHECK(false && "unknown LoadComponent");
  return "";
}

/// Machine identifier used in metric names (`load.<slug>`) and in the JSON
/// exports; stable across releases (docs/OBSERVABILITY.md is the registry).
inline const char* load_component_slug(LoadComponent c) {
  switch (c) {
    case LoadComponent::kMbrSource: return "mbr_source";
    case LoadComponent::kMbrInternal: return "mbr_internal";
    case LoadComponent::kMbrTransit: return "mbr_transit";
    case LoadComponent::kQueries: return "queries";
    case LoadComponent::kResponses: return "responses";
    case LoadComponent::kResponsesInternal: return "responses_internal";
    case LoadComponent::kResponsesTransit: return "responses_transit";
    case LoadComponent::kControl: return "control";
    case LoadComponent::kReplication: return "replication";
    case LoadComponent::kCount: break;
  }
  SDSI_CHECK(false && "unknown LoadComponent");
  return "";
}

/// The Fig 6(a) component a message event belongs to — the single
/// classification shared by the per-node load table, the time-series
/// registry, and the report renderers.
LoadComponent component_of(const routing::Message& msg, bool transit);

/// Aggregate counters for one message category (Fig 7 / Fig 8 views).
struct CategoryCounters {
  std::uint64_t originated = 0;      // first-class sends (not range copies)
  std::uint64_t range_internal = 0;  // copies created by range forwarding
  std::uint64_t transit = 0;         // overlay relays
  std::uint64_t delivered = 0;       // deliveries (all copies)
  common::OnlineStats hops_routed;   // hops of delivered first-class copies
  common::OnlineStats hops_internal; // hops of delivered range copies
  // Full latency distributions (log-bucketed: count/sum/min/max exact,
  // p50/p90/p99 interpolated — obs/log_histogram.hpp).
  obs::LogHistogram latency_ms;        // send->deliver, first-class copies
  obs::LogHistogram range_latency_ms;  // original send->deliver, range
                                       // copies (cumulative walk delay)
};

/// Self-healing bookkeeping: what the fault-tolerance machinery did and how
/// long repairs took (heal latency = first send of an MBR batch to the ack
/// that finally confirmed it, counted only when retries were needed).
struct RobustnessCounters {
  std::uint64_t mbr_retries = 0;        // ack-timeout retransmissions
  std::uint64_t mbr_retry_exhausted = 0;// batches that ran out of budget
  std::uint64_t mbr_refreshes = 0;      // soft-state re-publications
  std::uint64_t mbr_acks = 0;           // storage confirmations received
  std::uint64_t duplicate_stores = 0;   // redeliveries the store suppressed
  std::uint64_t response_retries = 0;   // re-queued unacked match pushes
  std::uint64_t duplicate_matches = 0;  // client-side duplicate suppressions
  std::uint64_t location_retries = 0;   // location-get backoff retries
  /// One sample per healed batch, in ms. A single log-bucketed histogram
  /// carries the whole story: count/mean/max exactly, p50/p90/p99 estimated.
  obs::LogHistogram heal_latency_ms;

  // --- Replication & failover layer --------------------------------------
  std::uint64_t replica_puts = 0;       // store entries mirrored to replicas
  std::uint64_t replica_repairs = 0;    // anti-entropy backfills applied
  std::uint64_t handoff_entries = 0;    // entries moved by join/leave handoff
  std::uint64_t handoff_bytes = 0;      // approximate handoff payload bytes
  std::uint64_t aggregator_failovers = 0;  // replica-to-aggregator promotions
  std::uint64_t report_detours = 0;     // sends saved by dead-hop detours
  std::uint64_t oracle_fallbacks = 0;   // routing bypassed protocol state
  /// Aggregator dark time per failover: replica's last mirror update to its
  /// promotion instant (how long partial aggregations sat unserved).
  obs::LogHistogram failover_latency_ms;

  // --- Overload-survival layer (hot-arc splitting + shedding) -------------
  std::uint64_t hot_arc_splits = 0;     // detector enter transitions
  std::uint64_t hot_arc_merges = 0;     // detector exit transitions
  std::uint64_t split_diverted_stores = 0;  // MBR stores redirected to
                                            // split delegates
  std::uint64_t shed_mbrs = 0;          // MBR batches shed at a full ingest
                                        // queue (mirrors drops.shed_overload)
  std::uint64_t backpressure_deferrals = 0;  // publications delayed, not lost
  std::uint64_t backpressure_drops = 0;      // deferral queue overflowed
                                             // (mirrors drops.backpressure)
};

class MetricsCollector final : public routing::MetricsHook {
 public:
  explicit MetricsCollector(std::size_t num_nodes);

  /// While disabled (warm-up), nothing is recorded.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  void reset();

  /// Grows the per-node table when data centers join at runtime.
  void ensure_nodes(std::size_t count) {
    if (count > per_node_.size()) {
      per_node_.resize(count);
      work_per_node_.resize(count, 0);
    }
  }

  // MetricsHook interface.
  void on_send(NodeIndex from, const routing::Message& msg) override;
  void on_transit(NodeIndex via, const routing::Message& msg) override;
  void on_deliver(NodeIndex at, const routing::Message& msg) override;
  void on_drop(fault::DropCause cause, const routing::Message& msg) override;
  void on_detour(NodeIndex around, const routing::Message& msg) override;
  void on_oracle_fallback(NodeIndex node) override;

  /// Attach the simulator clock so latency can be measured.
  void set_clock(const sim::Simulator* clock) noexcept { clock_ = clock; }

  /// Attach a time-series registry (obs/timeseries.hpp). When set, every
  /// event additionally updates windowed series (`load.<slug>`,
  /// `drops.<slug>`, `latency.*`). Registry updates deliberately bypass the
  /// warm-up gate: the series describe the whole run over time — including
  /// warm-up and drain — while the aggregate counters stay
  /// measurement-window-only. Pass nullptr to detach.
  void set_registry(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* registry() const noexcept { return registry_; }

  std::size_t num_nodes() const noexcept { return per_node_.size(); }

  /// Load events (sends + transits + deliveries touching the node) of one
  /// Fig 6(a) component at one node.
  std::uint64_t node_load(NodeIndex node, LoadComponent component) const;

  /// Total load events at a node across all components.
  std::uint64_t node_load_total(NodeIndex node) const;

  /// Index *work* units performed at a node: MBR stores accepted, match
  /// candidate scans, and aggregation pushes. Message load measures what the
  /// overlay delivers; work measures what the node then has to do — the
  /// quantity hot-arc splitting redistributes (a split cannot un-deliver a
  /// message, but it can move the store+match cost to a delegate). Increments
  /// come from the middleware's serial dispatch path, so totals are
  /// deterministic across thread counts.
  void add_node_work(NodeIndex node, std::uint64_t units) {
    if (!enabled_ || node >= work_per_node_.size()) {
      return;
    }
    work_per_node_[node] += units;
  }
  std::uint64_t node_work_total(NodeIndex node) const {
    SDSI_CHECK(node < work_per_node_.size());
    return work_per_node_[node];
  }

  const CategoryCounters& mbr() const noexcept { return mbr_; }
  const CategoryCounters& query() const noexcept { return query_; }
  const CategoryCounters& response() const noexcept { return response_; }
  const CategoryCounters& neighbor() const noexcept { return neighbor_; }
  const CategoryCounters& location() const noexcept { return location_; }
  const CategoryCounters& control() const noexcept { return control_; }
  const CategoryCounters& replication() const noexcept { return replication_; }

  /// Drops observed through the routing hook, by cause label (unified view
  /// over link-loss models and routing-level losses).
  std::uint64_t drops(fault::DropCause cause) const noexcept {
    return drops_by_cause_[static_cast<std::size_t>(cause)];
  }
  std::uint64_t total_drops() const noexcept;

  /// Self-healing counters; the middleware increments them directly.
  RobustnessCounters& robustness() noexcept { return robustness_; }
  const RobustnessCounters& robustness() const noexcept { return robustness_; }

  /// Middleware-side increment that respects the warm-up gate (the
  /// collector swallows events while disabled).
  bool recording() const noexcept { return enabled_; }

 private:
  CategoryCounters& category(const routing::Message& msg);
  void add_node_load(NodeIndex node, const routing::Message& msg,
                     bool transit);

  /// Registry series resolved once at attach time so per-event updates do no
  /// name lookups (metric references stay stable inside the registry).
  struct RegistrySeries {
    std::array<obs::Counter*, static_cast<std::size_t>(LoadComponent::kCount)>
        load{};
    obs::Counter* load_total = nullptr;
    std::array<obs::Counter*, static_cast<std::size_t>(fault::DropCause::kCount)>
        drops{};
    obs::Counter* drops_total = nullptr;
    obs::HistogramMetric* deliver_latency = nullptr;
    obs::HistogramMetric* range_walk_latency = nullptr;
  };
  RegistrySeries series_;

  bool enabled_ = true;
  const sim::Simulator* clock_ = nullptr;
  obs::MetricsRegistry* registry_ = nullptr;
  std::vector<std::array<std::uint64_t,
                         static_cast<std::size_t>(LoadComponent::kCount)>>
      per_node_;
  std::vector<std::uint64_t> work_per_node_;
  CategoryCounters mbr_;
  CategoryCounters query_;
  CategoryCounters response_;
  CategoryCounters neighbor_;
  CategoryCounters location_;
  CategoryCounters control_;
  CategoryCounters replication_;
  std::array<std::uint64_t, static_cast<std::size_t>(fault::DropCause::kCount)>
      drops_by_cause_{};
  RobustnessCounters robustness_;
};

}  // namespace sdsi::core
