// MBR batching of consecutive feature vectors (paper Sec IV-G).
//
// Consecutive summaries of one stream differ in a single sample out of N
// ("Fourier locality", Fig 3b), so instead of routing every feature vector,
// every `batch_size` of them are grouped into one MBR and the box is routed.
//
// The adaptive variant (paper Sec VI-A, after Olston et al.) bounds the box
// *size* instead of the point count: it emits as soon as adding the next
// vector would push any side beyond `max_extent`, trading update rate for
// precision — fast-moving streams emit more, flat streams emit less.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "dsp/mbr.hpp"

namespace sdsi::core {

class MbrBatcher {
 public:
  enum class Mode {
    kFixedCount,  // paper Sec IV-G: every beta vectors -> one MBR
    kAdaptive,    // paper Sec VI-A: bounded box extent
  };

  struct Options {
    Mode mode = Mode::kFixedCount;
    std::size_t batch_size = 5;  // beta (fixed-count mode)
    double max_extent = 0.05;    // per-dimension cap (adaptive mode)
    std::size_t max_batch = 64;  // adaptive hard cap so boxes always flush
  };

  MbrBatcher() : MbrBatcher(Options{}) {}
  explicit MbrBatcher(Options options) : options_(options) {
    SDSI_CHECK(options_.batch_size >= 1);
    SDSI_CHECK(options_.max_batch >= 1);
    SDSI_CHECK(options_.max_extent > 0.0);
  }

  const Options& options() const noexcept { return options_; }

  /// Adjusts the adaptive extent budget at runtime (used by the Sec VI-A
  /// precision controller). Applies from the next push; the current batch
  /// keeps the box it has already grown.
  void set_max_extent(double extent) noexcept {
    SDSI_DCHECK(extent > 0.0);
    options_.max_extent = extent;
  }

  /// Adds a feature vector; returns the finished MBR when the batch closes.
  std::optional<dsp::Mbr> push(const dsp::FeatureVector& features);

  /// Flushes a partially filled batch (stream shutdown).
  std::optional<dsp::Mbr> flush();

  std::size_t pending() const noexcept { return pending_count_; }
  std::uint64_t batches_emitted() const noexcept { return batches_; }
  std::uint64_t vectors_seen() const noexcept { return vectors_; }

 private:
  std::optional<dsp::Mbr> emit();
  bool would_exceed_extent(const dsp::FeatureVector& features) const;

  Options options_;
  dsp::Mbr current_;
  std::size_t pending_count_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t vectors_ = 0;
};

}  // namespace sdsi::core
