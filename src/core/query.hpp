// Query model (paper Sec III-B) and the typed payloads the middleware puts
// into routing messages.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "dsp/features.hpp"
#include "dsp/mbr.hpp"
#include "sim/time.hpp"

namespace sdsi::core {

using QueryId = std::uint64_t;

/// Similarity query (q, epsilon, lifespan): report every stream whose
/// normalized window is within distance epsilon of the query sequence,
/// continuously for `lifespan`.
struct SimilarityQuery {
  QueryId id = 0;
  NodeIndex client = kInvalidNode;
  dsp::FeatureVector features;  // extracted from the query sequence q
  double radius = 0.1;          // epsilon
  sim::Duration lifespan;
  sim::SimTime issued_at;
};

/// Inner-product query (sid, i, w, lifespan): continuously report
/// sum_j i_j * w_j * x_j over the most recent window of stream `stream`.
struct InnerProductQuery {
  QueryId id = 0;
  NodeIndex client = kInvalidNode;
  StreamId stream = 0;
  std::vector<double> index;    // data items of interest
  std::vector<double> weights;  // per-item weights
  sim::Duration lifespan;
  sim::SimTime issued_at;
};

/// One detected similarity candidate (stream whose summary passed the
/// lower-bound test against the query ball).
struct SimilarityMatch {
  QueryId query = 0;
  StreamId stream = 0;
  double bound_distance = 0.0;  // lower bound that admitted the candidate
  sim::SimTime detected_at;
};

// --- Routing payloads -------------------------------------------------------

/// Payload of kMbrUpdate messages: one batch of summaries from one stream.
///
/// `expires` is the ABSOLUTE expiry instant, fixed once when the batch
/// closes at the source. Retransmissions and soft-state refreshes re-send
/// the same payload verbatim, so every replica — however late it lands —
/// stores an identical entry and the store's (stream, batch_seq) dedup makes
/// redelivery a no-op (self-healing never inflates match counts).
struct MbrPayload {
  StreamId stream = 0;
  NodeIndex source = kInvalidNode;
  dsp::Mbr mbr;
  std::uint64_t batch_seq = 0;  // per-stream batch counter
  sim::SimTime expires;         // born + mbr_lifespan, absolute
};

/// Payload of kMbrAck messages: the landing node of an MBR range multicast
/// confirms storage back to the source (self-healing data path).
struct MbrAckPayload {
  StreamId stream = 0;
  std::uint64_t batch_seq = 0;
};

/// Payload of kSimilarityQuery messages (shared across all range replicas).
struct SimilarityQueryPayload {
  std::shared_ptr<const SimilarityQuery> query;
  Key middle_key = 0;  // aggregation point of the query's key range
};

/// Payload of kInnerProductQuery messages.
struct InnerProductQueryPayload {
  std::shared_ptr<const InnerProductQuery> query;
};

/// One report traveling neighbor-to-neighbor toward a query's middle node.
struct MatchReport {
  SimilarityMatch match;
  NodeIndex client = kInvalidNode;
  Key middle_key = 0;
  sim::SimTime query_expires;
};

/// Payload of kNeighborExchange messages: the node's aggregated digest of
/// match reports for this period (one message, all queries — which is why
/// the paper's component (f) is constant per node).
struct NeighborDigestPayload {
  std::vector<MatchReport> reports;
};

/// Payload of kResponse messages: periodic push to one client.
struct ResponsePayload {
  QueryId query = 0;
  NodeIndex client = kInvalidNode;
  bool inner_product = false;
  std::vector<SimilarityMatch> matches;  // new matches since last push
  double inner_product_value = 0.0;      // for inner-product subscriptions
  NodeIndex aggregator = kInvalidNode;   // who to ack (kInvalidNode: no ack)
  std::uint64_t push_seq = 0;            // per-(aggregator, query) push id
};

/// Payload of kResponseAck messages: the client confirms receipt of a
/// match-bearing push so the aggregator can retire it from its in-flight
/// window (otherwise the matches are re-queued after a timeout).
struct ResponseAckPayload {
  QueryId query = 0;
  std::uint64_t push_seq = 0;
};

// --- Replication & failover payloads ----------------------------------------

/// Identity of one MBR batch in digests and backfill requests.
struct MbrBatchId {
  StreamId stream = 0;
  std::uint64_t batch_seq = 0;
};

/// One mirrored MBR store entry — the stored fields verbatim (absolute
/// `expires`), so a replica stores exactly what the owner holds and the
/// (stream, batch_seq) dedup keeps redelivery idempotent.
struct ReplicaMbrEntry {
  StreamId stream = 0;
  NodeIndex source = kInvalidNode;
  dsp::Mbr mbr;
  std::uint64_t batch_seq = 0;
  sim::SimTime expires;
};

/// One mirrored similarity-subscription entry.
struct ReplicaSubscriptionEntry {
  std::shared_ptr<const SimilarityQuery> query;
  Key middle_key = 0;
  sim::SimTime expires;
};

/// Payload of kReplicaPut messages: store entries pushed to a replica peer.
/// Serves three flows under one kind — the synchronous mirror at store
/// time, the handoff slice on join/leave, and anti-entropy backfill.
struct ReplicaPutPayload {
  NodeIndex from = kInvalidNode;
  std::vector<ReplicaMbrEntry> mbrs;
  std::vector<ReplicaSubscriptionEntry> subscriptions;
  bool handoff = false;  // part of an ownership-transfer slice
  bool repair = false;   // anti-entropy gap backfill
};

/// Payload of kHandoffRequest messages: a node that (re)joined asks its
/// successor for every entry whose key range intersects the arc (lo, hi]
/// it now owns.
struct HandoffRequestPayload {
  NodeIndex requester = kInvalidNode;
  Key lo = 0;  // exclusive: the requester's predecessor id
  Key hi = 0;  // inclusive: the requester's own id
};

/// Payload of kAntiEntropyDigest messages: a compact listing of the store
/// entries the sender holds for its own arc (lo, hi], sent to its replica
/// set. The receiver requests what it misses and pushes back what the
/// sender misses.
struct AntiEntropyDigestPayload {
  NodeIndex from = kInvalidNode;
  Key lo = 0;  // exclusive low end of the sender's owned arc
  Key hi = 0;  // inclusive high end (the sender's id)
  std::vector<MbrBatchId> mbr_keys;
  std::vector<QueryId> query_ids;
};

/// Payload of kAntiEntropyRequest messages: the digest entries the
/// requester is missing and wants backfilled.
struct AntiEntropyRequestPayload {
  NodeIndex requester = kInvalidNode;
  std::vector<MbrBatchId> mbr_keys;
  std::vector<QueryId> query_ids;
};

/// Payload of kAggregatorReplica messages: an incremental mirror of one
/// query's partial aggregation to the middle key's replica set, so a
/// replica can promote itself to aggregator when the middle node dies
/// without losing any client-visible match.
struct AggregatorReplicaPayload {
  QueryId query = 0;
  NodeIndex client = kInvalidNode;
  Key middle_key = 0;
  sim::SimTime expires;
  NodeIndex owner = kInvalidNode;  // the aggregator that mirrored
  std::vector<SimilarityMatch> matches;  // newly filed since the last mirror
};

/// Payload of kHeartbeat messages: the periodic liveness beacon every ring
/// member sends every peer (net::FailureDetector). `epoch` increments each
/// time the process restarts, so a peer that sees a higher epoch than it
/// last recorded knows the node died and rejoined — the trigger for handoff
/// and anti-entropy repair toward the rejoiner. `seq` is a per-sender
/// counter (monotone within one epoch) for observability.
struct HeartbeatPayload {
  NodeIndex from = kInvalidNode;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};

/// Location service payloads (Sec IV-D).
struct LocationPutPayload {
  StreamId stream = 0;
  NodeIndex source = kInvalidNode;
};
struct LocationGetPayload {
  StreamId stream = 0;
  NodeIndex requester = kInvalidNode;
};
struct LocationReplyPayload {
  StreamId stream = 0;
  NodeIndex source = kInvalidNode;  // kInvalidNode: unknown stream
};

}  // namespace sdsi::core
