// Query model (paper Sec III-B) and the typed payloads the middleware puts
// into routing messages.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "dsp/features.hpp"
#include "dsp/mbr.hpp"
#include "sim/time.hpp"

namespace sdsi::core {

using QueryId = std::uint64_t;

/// Similarity query (q, epsilon, lifespan): report every stream whose
/// normalized window is within distance epsilon of the query sequence,
/// continuously for `lifespan`.
struct SimilarityQuery {
  QueryId id = 0;
  NodeIndex client = kInvalidNode;
  dsp::FeatureVector features;  // extracted from the query sequence q
  double radius = 0.1;          // epsilon
  sim::Duration lifespan;
  sim::SimTime issued_at;
};

/// Inner-product query (sid, i, w, lifespan): continuously report
/// sum_j i_j * w_j * x_j over the most recent window of stream `stream`.
struct InnerProductQuery {
  QueryId id = 0;
  NodeIndex client = kInvalidNode;
  StreamId stream = 0;
  std::vector<double> index;    // data items of interest
  std::vector<double> weights;  // per-item weights
  sim::Duration lifespan;
  sim::SimTime issued_at;
};

/// One detected similarity candidate (stream whose summary passed the
/// lower-bound test against the query ball).
struct SimilarityMatch {
  QueryId query = 0;
  StreamId stream = 0;
  double bound_distance = 0.0;  // lower bound that admitted the candidate
  sim::SimTime detected_at;
};

// --- Routing payloads -------------------------------------------------------

/// Payload of kMbrUpdate messages: one batch of summaries from one stream.
struct MbrPayload {
  StreamId stream = 0;
  NodeIndex source = kInvalidNode;
  dsp::Mbr mbr;
  std::uint64_t batch_seq = 0;  // per-stream batch counter
};

/// Payload of kSimilarityQuery messages (shared across all range replicas).
struct SimilarityQueryPayload {
  std::shared_ptr<const SimilarityQuery> query;
  Key middle_key = 0;  // aggregation point of the query's key range
};

/// Payload of kInnerProductQuery messages.
struct InnerProductQueryPayload {
  std::shared_ptr<const InnerProductQuery> query;
};

/// One report traveling neighbor-to-neighbor toward a query's middle node.
struct MatchReport {
  SimilarityMatch match;
  NodeIndex client = kInvalidNode;
  Key middle_key = 0;
  sim::SimTime query_expires;
};

/// Payload of kNeighborExchange messages: the node's aggregated digest of
/// match reports for this period (one message, all queries — which is why
/// the paper's component (f) is constant per node).
struct NeighborDigestPayload {
  std::vector<MatchReport> reports;
};

/// Payload of kResponse messages: periodic push to one client.
struct ResponsePayload {
  QueryId query = 0;
  NodeIndex client = kInvalidNode;
  bool inner_product = false;
  std::vector<SimilarityMatch> matches;  // new matches since last push
  double inner_product_value = 0.0;      // for inner-product subscriptions
};

/// Location service payloads (Sec IV-D).
struct LocationPutPayload {
  StreamId stream = 0;
  NodeIndex source = kInvalidNode;
};
struct LocationGetPayload {
  StreamId stream = 0;
  NodeIndex requester = kInvalidNode;
};
struct LocationReplyPayload {
  StreamId stream = 0;
  NodeIndex source = kInvalidNode;  // kInvalidNode: unknown stream
};

}  // namespace sdsi::core
