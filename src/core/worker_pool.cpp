#include "core/worker_pool.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sdsi::core {

std::size_t WorkerPool::resolve(std::size_t threads) noexcept {
  if (threads != 0) {
    return threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

WorkerPool::WorkerPool(std::size_t threads) {
  const std::size_t lanes = resolve(threads);
  // lanes - 1 workers: the caller is always the last lane, so one lane
  // means inline mode with no thread ever spawned.
  workers_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void WorkerPool::run_chunks(Job& job) {
  for (;;) {
    const std::size_t begin =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.count) {
      return;
    }
    const std::size_t end = std::min(begin + job.grain, job.count);
    (*job.body)(begin, end);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (++job.completed == job.chunks) {
        done_cv_.notify_all();
      }
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      job = job_;
    }
    // The shared_ptr keeps the Job alive even if the caller's barrier
    // releases before this worker's last (empty) claim attempt; the body
    // pointer is only dereferenced for successfully claimed chunks, which
    // the barrier by definition waits for.
    run_chunks(*job);
  }
}

void WorkerPool::parallel_chunks(std::size_t count, std::size_t grain,
                                 const ChunkFn& fn) {
  if (count == 0) {
    return;
  }
  if (grain == 0) {
    // ~4 chunks per lane: enough slack for skewed per-item cost, few enough
    // that the per-chunk mutex tap stays invisible.
    grain = std::max<std::size_t>(1, count / (thread_count() * 4));
  }
  if (inline_mode() || count <= grain) {
    fn(0, count);
    return;
  }
  auto job = std::make_shared<Job>();
  job->body = &fn;
  job->count = count;
  job->grain = grain;
  job->chunks = (count + grain - 1) / grain;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Reentrant use would deadlock on the barrier; fail loudly instead.
    SDSI_CHECK(job_ == nullptr && "WorkerPool jobs must not nest");
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();
  run_chunks(*job);  // the caller is a lane too
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job->completed == job->chunks; });
    job_ = nullptr;
  }
}

void WorkerPool::parallel_for(std::size_t count, const IndexFn& fn) {
  parallel_chunks(count, 0, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      fn(i);
    }
  });
}

}  // namespace sdsi::core
