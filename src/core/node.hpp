// Per-data-center middleware state. MiddlewareSystem (system.hpp) drives the
// logic; this header holds what one node knows.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/dense_map.hpp"
#include "core/batcher.hpp"
#include "core/index_store.hpp"
#include "core/precision.hpp"
#include "core/query.hpp"
#include "core/strategy.hpp"
#include "sim/simulator.hpp"

namespace sdsi::core {

/// One inner-product subscription installed at a stream's source node.
struct InnerProductSubscription {
  std::shared_ptr<const InnerProductQuery> query;
  sim::SimTime expires;
};

/// A stream this node is the source of ("each node is a source of exactly
/// one stream" in the experiments; the API supports several).
struct LocalStream {
  StreamId id = 0;
  /// Strategy-made summary (core/strategy.hpp); never null. The dft
  /// strategy wraps streams::StreamSummarizer verbatim.
  std::unique_ptr<Summarizer> summarizer;
  MbrBatcher batcher;
  /// Per-stream Sec VI-A closed loop, when the middleware enables it.
  std::optional<AdaptivePrecisionController> precision;
  std::uint64_t batch_seq = 0;
  std::vector<InnerProductSubscription> inner_subscriptions;
  /// Per-tick feature scratch: overwritten in place on every ingested
  /// sample so the steady-state ingest path allocates nothing.
  dsp::FeatureVector features_scratch;

  LocalStream(StreamId stream, const IndexingStrategy& strategy,
              const MbrBatcher::Options& batching)
      : id(stream), summarizer(strategy.make_summarizer()), batcher(batching) {}
};

/// Aggregation state for one similarity query whose range middle key this
/// node covers (Sec IV-F: range nodes report candidates to the middle node,
/// which periodically pushes responses to the client).
struct AggregatorRecord {
  NodeIndex client = kInvalidNode;
  Key middle_key = 0;  // the range midpoint this aggregation is keyed on
  sim::SimTime expires;
  std::vector<SimilarityMatch> pending;  // to include in the next push
  DenseSet<StreamId> seen;               // cross-node deduplication
  std::uint64_t pushes = 0;

  /// One match-bearing push awaiting its client ack (self-healing response
  /// path): kept so a lost push can be retransmitted verbatim.
  struct InflightPush {
    std::vector<SimilarityMatch> matches;
    sim::SimTime sent_at;
    int attempts = 0;  // retransmissions so far
  };
  std::uint64_t next_push_seq = 1;
  std::map<std::uint64_t, InflightPush> inflight;  // push_seq -> unacked
};

/// One acked MBR publication (self-healing data path): the batch was routed
/// over [lo, hi] but the landing node has not confirmed storage yet, or it
/// has and the record is retained so soft-state refresh can re-route it
/// until the batch expires.
struct PublishedMbr {
  std::shared_ptr<const MbrPayload> payload;
  Key lo = 0;
  Key hi = 0;
  sim::SimTime first_sent;
  int attempts = 0;  // retransmissions so far
  bool acked = false;
  sim::TaskHandle retry_timer;
  /// One trace id for the publication's whole life: the original send,
  /// every retry and refresh re-use it, so the trace stream tells the
  /// batch's full story under a single correlation id (obs/trace.hpp).
  std::uint64_t trace_id = 0;
};

/// Passive mirror of one query's partial aggregation (replication layer):
/// this node is in the middle key's replica set; if the aggregator dies the
/// node promotes the mirror into a live AggregatorRecord and re-pushes every
/// mirrored match (client-side distinct-stream dedup keeps counts exact).
struct AggregationReplica {
  NodeIndex client = kInvalidNode;
  Key middle_key = 0;
  sim::SimTime expires;
  DenseSet<StreamId> seen;               // streams mirrored so far
  std::vector<SimilarityMatch> matches;  // everything mirrored, in order
  sim::SimTime last_update;              // failover dark-time measurement
};

/// One MBR publication the source deferred under ingest backpressure: the
/// batch closed but the per-window publish budget was spent, so it waits in
/// the node's deferral queue until the next overload window drains it (its
/// batch_seq is assigned at actual publication, keeping seqs FIFO).
struct DeferredPublication {
  StreamId stream = 0;
  dsp::Mbr mbr;
};

struct MiddlewareNode {
  MiddlewareNode() = default;
  /// nodes_ grows via emplace_back, which moves only when the move is
  /// noexcept; `streams` holds move-only LocalStream entries, so the copy
  /// fallback is deleted and the move path must be forced.
  MiddlewareNode(MiddlewareNode&&) noexcept = default;
  MiddlewareNode& operator=(MiddlewareNode&&) noexcept = default;

  NodeIndex index = kInvalidNode;

  /// Streams originating here, keyed by stream id (iteration follows
  /// insertion order, which build() makes ascending).
  DenseMap<StreamId, LocalStream> streams;

  /// Content-routed storage (MBRs + similarity subscriptions).
  IndexStore store;

  /// Similarity queries aggregated here (this node covers their middle key).
  DenseMap<QueryId, AggregatorRecord> aggregations;

  /// Match reports waiting for the next periodic neighbor digest.
  std::vector<MatchReport> outgoing_reports;

  /// Location-service directory fragment: streams whose h2 key this node
  /// covers.
  DenseMap<StreamId, NodeIndex> location_directory;

  /// Client-side cache of resolved stream locations ("remembers the mapping
  /// so next time it does not need to retrieve it").
  DenseMap<StreamId, NodeIndex> location_cache;

  /// Inner-product queries posed here and still waiting for a location
  /// reply, keyed by stream id.
  DenseMap<StreamId, std::vector<std::shared_ptr<const InnerProductQuery>>>
      pending_inner_queries;

  /// Acked MBR publications originated here, keyed (stream, batch_seq).
  /// Ordered so soft-state refresh walks batches deterministically.
  std::map<std::pair<StreamId, std::uint64_t>, PublishedMbr> published_mbrs;

  /// Location-get retries already spent per unresolved stream (drives the
  /// capped exponential backoff); erased once the stream resolves.
  DenseMap<StreamId, int> location_retry_attempts;

  /// Partial-aggregation mirrors held for other nodes' queries (this node is
  /// in the middle key's replica set). Promoted into `aggregations` when the
  /// aggregator's arc falls to this node.
  DenseMap<QueryId, AggregationReplica> aggregation_replicas;

  /// Overload-control state (touched only when MiddlewareConfig::overload is
  /// set). All mutations happen on the middleware's serial paths, so the
  /// same seed yields the same shed/split/defer schedule at any thread
  /// count.
  struct OverloadState {
    std::uint64_t window_work = 0;       // index work this detector window
    std::uint64_t window_ingest = 0;     // MBR stores accepted this window
    std::uint64_t window_published = 0;  // publications sent this window
    double shed_accumulator = 0.0;       // forced-shed fractional counter
    /// Virtual successor nodes sharing this node's arc while it is hot;
    /// empty when cool.
    std::vector<NodeIndex> split_delegates;
    /// Source-side backpressure queue of closed-but-unpublished batches.
    std::deque<DeferredPublication> deferred;
  };
  OverloadState overload;
};

}  // namespace sdsi::core
