// metrics.json export (observability layer).
//
// Serializes one finished Experiment — run parameters, the Fig 6/7/8 report
// reductions, drop accounting, robustness counters, quality summary, and the
// attached registry's windowed time series — into the versioned
// `sdsi.metrics` v2 document that tools/make_figures consumes.
// docs/OBSERVABILITY.md is the schema reference.
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "obs/json.hpp"

namespace sdsi::core {

/// Builds the full schema-v2 document.
obs::Json metrics_to_json(const Experiment& experiment);

/// Histogram sub-document used for every LogHistogram in the export.
obs::Json histogram_to_json(const obs::LogHistogram& histogram);

/// Writes metrics_to_json pretty-printed; false on I/O failure.
bool write_metrics_json(const Experiment& experiment, const std::string& path);

}  // namespace sdsi::core
