// The distributed stream-indexing middleware (the paper's contribution).
//
// MiddlewareSystem wires one MiddlewareNode per data center on top of any
// RoutingSystem and exposes the application-view primitives of Figure 5:
//
//   update(summary, stream)      -> post_stream_value / register_stream
//   subscribe(pattern)           -> subscribe_similarity
//   subscribe(inner_product)     -> subscribe_inner_product
//   periodic push_similarity_info / push_inner_product_info  (automatic)
//
// Internally it implements Sec IV end to end: Eq. 6 content keys, MBR
// batching and range replication, similarity matching with no false
// dismissals, middle-node aggregation, the h2 location service, and the
// periodic notification machinery of Table I.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/hot_arc.hpp"
#include "core/mapper.hpp"
#include "core/metrics.hpp"
#include "core/node.hpp"
#include "core/strategy.hpp"
#include "core/worker_pool.hpp"
#include "routing/api.hpp"

namespace sdsi::core {

/// Capped exponential backoff with seeded jitter, shared by the acked MBR
/// publication and acked response paths. Retry n (0-based) waits
/// min(timeout * 2^n, max_backoff) + uniform[0, jitter) before giving the
/// transmission up for lost.
struct RetryPolicy {
  bool enabled = false;
  sim::Duration timeout = sim::Duration::millis(1500);
  sim::Duration max_backoff = sim::Duration::millis(12'000);
  sim::Duration jitter = sim::Duration::millis(250);
  int max_attempts = 4;  // retransmission budget beyond the first send
};

/// Overload-control knobs (adversarial-skew extension). Three cooperating
/// mechanisms, each individually disableable:
///  - hot-arc splitting: the detector flags nodes running persistently hot
///    (by index work) and fans their arc out across `split_ways - 1` virtual
///    successor delegates via the replication machinery;
///  - load shedding: a bounded per-window ingest budget; overflow stores are
///    dropped as accounted fault::DropCause::kShedOverload (never silent);
///  - ingest backpressure: a per-source publish budget defers closed batches
///    into a bounded FIFO instead of flooding the ring; queue overflow drops
///    the oldest batch as accounted kBackpressure.
struct OverloadOptions {
  /// Hot-arc detector hysteresis (core/hot_arc.hpp).
  HotArcConfig detector;

  /// Detector window: per-node work counters are read + reset, transitions
  /// applied, and deferred publications drained at this period.
  sim::Duration window = sim::Duration::millis(2000);

  /// A hot node's arc is split this many ways: itself plus split_ways - 1
  /// successor-list delegates. 1 disables splitting (detect-only).
  std::size_t split_ways = 3;

  /// Max MBR stores a node accepts per detector window; past it, deliveries
  /// shed as kShedOverload. 0 = unbounded (shedding off).
  std::uint64_t ingest_capacity = 0;

  /// Deterministic forced shed fraction in [0, 1): every store attempt
  /// advances a per-node accumulator by this much and sheds on overflow.
  /// Drives the recall-vs-shed-rate degradation curve without any rng.
  double forced_shed_rate = 0.0;

  /// Max MBR publications per source per window before deferral; 0 =
  /// unbounded (backpressure off).
  std::uint64_t publish_budget = 0;

  /// Bound of the per-source deferral queue; overflow drops the oldest
  /// deferred batch as kBackpressure.
  std::size_t defer_capacity = 64;
};

struct MiddlewareConfig {
  /// Window/coefficient/normalization scheme (Sec III-C).
  dsp::FeatureConfig features;

  /// Indexing strategy: summary + content-to-key map (core/strategy.hpp).
  /// The default ("dft") is the paper's pipeline, byte-identical to the
  /// pre-strategy code; "ecm" and "lsh" are the PAPERS.md alternatives.
  StrategyOptions strategy;

  /// MBR batching (Sec IV-G / VI-A).
  MbrBatcher::Options batching;

  /// Range multicast flavor (Sec IV-C sequential vs Sec VI-B bidirectional).
  routing::MulticastStrategy multicast =
      routing::MulticastStrategy::kSequential;

  /// BSPAN: lifespan of a stored MBR.
  sim::Duration mbr_lifespan = sim::Duration::millis(5000);

  /// NPER: period of matching, neighbor digests, and response pushes.
  sim::Duration notify_period = sim::Duration::millis(2000);

  /// Also keep each summary in the source node's local store ("each stream
  /// summary is stored locally, and also routed").
  bool store_local_summaries = true;

  /// Soft-state refresh of similarity subscriptions: the client re-routes
  /// each live query over its key range at this period, so nodes that
  /// joined (or recovered) inside the range pick the subscription up and
  /// lost query copies heal. Zero disables (the paper's one-shot install).
  sim::Duration query_refresh_period = sim::Duration();

  /// When set, every stream runs the Sec VI-A closed loop: its batcher is
  /// forced to adaptive mode and a per-stream AdaptivePrecisionController
  /// retunes the extent budget against the observed emission rate.
  std::optional<AdaptivePrecisionController::Options> adaptive_precision;

  // --- Self-healing data path (fault-tolerance extension) -----------------

  /// Acked MBR publication: the landing node of each range multicast
  /// confirms storage; unacked batches are retransmitted under this policy.
  RetryPolicy mbr_ack;

  /// Acked match-bearing response pushes: unacked pushes are retransmitted
  /// verbatim on later ticks under this policy (timeout + max_attempts; the
  /// notify period is the effective backoff base).
  RetryPolicy response_ack;

  /// Soft-state refresh of published MBRs: each source re-routes its live
  /// unexpired batches (and re-registers its streams with the location
  /// service) at this period, healing state lost to drops or node crashes —
  /// the MBR-side mirror of query_refresh_period. Zero disables.
  sim::Duration mbr_refresh_period = sim::Duration();

  /// Seed of the middleware's own randomness (retry jitter); fixed default
  /// keeps runs reproducible.
  std::uint64_t rng_seed = 0x5d51c0de;

  // --- Replication & failover (churn-tolerance extension) -----------------

  /// Successor-list replication degree r: every stored MBR batch, similarity
  /// subscription, and partial aggregation is mirrored to the key owner's r
  /// next live successors, so a crash promotes a replica instead of waiting
  /// for the soft-state refresh period. Zero disables the whole layer.
  std::size_t replication_factor = 0;

  /// Anti-entropy period: each node periodically sends a compact
  /// (stream, batch_seq) / query-id digest of its owned arc to its replica
  /// set; peers backfill gaps in both directions (idempotent via store
  /// dedup). Zero disables. Only active when replication_factor > 0.
  sim::Duration anti_entropy_period = sim::Duration();

  // --- Parallel execution engine ------------------------------------------

  /// Worker lanes for the hot paths: per-subscription candidate scans
  /// inside each node's periodic match pass, the per-node match pre-pass of
  /// tick_all_nodes, and per-stream summarization in post_stream_burst.
  /// 1 (the default) never spawns a thread — the serial path of PR 1,
  /// byte-identical and overhead-free. 0 resolves to the hardware
  /// concurrency (1 when unknown). Results are identical at every setting
  /// (see docs/PERFORMANCE.md, "Determinism").
  std::size_t threads = 1;

  // --- Overload control (adversarial-skew extension) ----------------------

  /// Hot-arc splitting, load shedding, and ingest backpressure; nullopt
  /// (the default) disables the whole layer with zero overhead and leaves
  /// every existing run byte-identical.
  std::optional<OverloadOptions> overload;
};

/// One node-local ingest burst for post_stream_burst: `values` are fed to
/// (node, stream) exactly as consecutive post_stream_value calls would be.
struct StreamBurst {
  NodeIndex node = kInvalidNode;
  StreamId stream = 0;
  std::vector<Sample> values;
};

/// What a client has observed for one of its continuous queries.
struct ClientQueryRecord {
  QueryId id = 0;
  NodeIndex client = kInvalidNode;
  bool inner_product = false;
  sim::SimTime issued_at;
  sim::SimTime expires;
  std::uint64_t responses_received = 0;
  /// Distinct matched streams reported across all responses (content-level
  /// dedup: a retransmitted or doubly-aggregated match never counts twice,
  /// so self-healing cannot inflate this).
  std::uint64_t match_events = 0;
  /// Match entries suppressed because their stream was already counted.
  std::uint64_t duplicate_match_events = 0;
  std::unordered_set<StreamId> matched_streams;
  double last_inner_value = 0.0;
  std::uint64_t inner_updates = 0;
  std::optional<sim::SimTime> first_response_at;
};

class MiddlewareSystem {
 public:
  /// Creates one middleware node per routing node and registers the deliver
  /// upcall and metrics hook on `routing`.
  MiddlewareSystem(routing::RoutingSystem& routing, MiddlewareConfig config);

  const MiddlewareConfig& config() const noexcept { return config_; }
  const SummaryMapper& mapper() const noexcept { return mapper_; }
  const IndexingStrategy& strategy() const noexcept { return *strategy_; }
  MetricsCollector& metrics() noexcept { return metrics_; }
  const MetricsCollector& metrics() const noexcept { return metrics_; }
  routing::RoutingSystem& routing() noexcept { return routing_; }

  /// Starts the periodic per-node machinery (expiry, matching, digests,
  /// response pushes). Node ticks are staggered across one period so the
  /// event load spreads out as it would with unsynchronized clocks.
  void start();

  // --- Application-view primitives (Fig 5) --------------------------------

  /// Declares `stream` to originate at `node` and registers it with the h2
  /// location service.
  void register_stream(NodeIndex node, StreamId stream);

  /// Retires a stream: flushes and routes the final partial MBR, drops the
  /// local state, and tombstones the h2 directory entry so future location
  /// lookups report the stream unknown.
  void unregister_stream(NodeIndex node, StreamId stream);

  /// Feeds one new data value of `stream` into its source node. Emits and
  /// routes an MBR whenever the batcher closes one.
  void post_stream_value(NodeIndex node, StreamId stream, Sample value);

  /// Bulk ingest: equivalent to calling post_stream_value for every value
  /// of every burst, in order (burst 0's values first). The per-stream
  /// summarization — the CPU-bound part — runs sharded across the worker
  /// pool (cold windows take the batched push_span path), then the closed
  /// MBRs are routed serially in burst order, so the message sequence, rng
  /// consumption, and all downstream state are byte-identical to the
  /// per-value loop. Bursts must target pairwise-distinct (node, stream)
  /// pairs (checked): a task owns its stream's summarizer exclusively.
  void post_stream_burst(const std::vector<StreamBurst>& bursts);

  /// Poses a continuous similarity query (Sec IV-E). Returns its id.
  QueryId subscribe_similarity(NodeIndex client, dsp::FeatureVector features,
                               double radius, sim::Duration lifespan);

  /// Convenience: extracts features from a raw query sequence first.
  QueryId subscribe_similarity_window(NodeIndex client,
                                      std::span<const Sample> window,
                                      double radius, sim::Duration lifespan);

  /// Poses a continuous inner-product query (Sec IV-D). Returns its id.
  QueryId subscribe_inner_product(NodeIndex client, StreamId stream,
                                  std::vector<double> index,
                                  std::vector<double> weights,
                                  sim::Duration lifespan);

  /// Point query: the stream's most recent value ("simple point and range
  /// queries can be expressed as inner product queries").
  QueryId subscribe_latest_value(NodeIndex client, StreamId stream,
                                 sim::Duration lifespan) {
    return subscribe_inner_product(client, stream, {1.0}, {1.0}, lifespan);
  }

  /// Moving average of the last `n` values (the paper's "average closing
  /// price over the last month" / "weighted average of the last 20 body
  /// temperature measurements" examples).
  QueryId subscribe_moving_average(NodeIndex client, StreamId stream,
                                   std::size_t n, sim::Duration lifespan) {
    SDSI_CHECK(n >= 1);
    return subscribe_inner_product(
        client, stream, std::vector<double>(n, 1.0),
        std::vector<double>(n, 1.0 / static_cast<double>(n)), lifespan);
  }

  // --- Observability -------------------------------------------------------

  /// Attaches middleware state (and the periodic tick, once started) to a
  /// data center that joined the ring after construction. Idempotent; the
  /// paper's "seamless addition of new data centers".
  void attach_node(NodeIndex index);

  /// Ownership handoff for a node that just (re)joined the ring: asks its
  /// successor for every entry whose key range intersects the arc the node
  /// now owns. No-op when replication is disabled. Call after the routing
  /// substrate has integrated the node (join/recover).
  void handle_node_join(NodeIndex index);

  /// Graceful-leave handoff: pushes the node's stored entries and partial
  /// aggregations to its successor before the substrate removes it. No-op
  /// when replication is disabled. Call before the routing leave().
  void handle_node_leave(NodeIndex index);

  /// Models the state loss of a crash: wipes everything the node held as
  /// soft state (stored MBRs and subscriptions, aggregations, buffered
  /// reports, location directory/cache, pending resolutions, publication
  /// records). Local streams survive — a restarted data center still owns
  /// its data sources (warm restart) and re-registers them on the next
  /// refresh. Call when a crashed node recovers into the ring.
  void reset_node_soft_state(NodeIndex index);

  const MiddlewareNode& node(NodeIndex index) const {
    SDSI_CHECK(index < nodes_.size());
    return nodes_[index];
  }
  MiddlewareNode& node_mutable(NodeIndex index) {
    SDSI_CHECK(index < nodes_.size());
    return nodes_[index];
  }
  std::size_t num_nodes() const noexcept { return nodes_.size(); }

  const ClientQueryRecord* client_record(QueryId id) const;
  const std::unordered_map<QueryId, ClientQueryRecord>& client_records()
      const noexcept {
    return client_records_;
  }

  /// Total MBRs routed since construction.
  std::uint64_t mbrs_routed() const noexcept { return mbrs_routed_; }

  /// Runs one synchronous tick on every node (tests drive time manually).
  /// With a worker pool, the per-node match passes run sharded with a
  /// barrier before the (serial, node-ordered) dispatch phase — message
  /// ordering and all state stay byte-identical to the serial loop, because
  /// nodes only interact through simulator-queued messages.
  void tick_all_nodes();

  /// The parallel engine's pool; nullptr when config.threads resolves to 1.
  WorkerPool* worker_pool() noexcept { return pool_.get(); }

  // --- Overload control ----------------------------------------------------

  /// Whether the overload-control layer is configured.
  bool overload_on() const noexcept { return config_.overload.has_value(); }

  /// Source-side backpressure level in [0, 1]: how full the node's deferral
  /// queue is. Generators consult this to stretch their emission gaps
  /// (slow down) instead of having the middleware drop their batches.
  double ingest_backpressure(NodeIndex node) const;

  /// The hot-arc detector; meaningful only when overload_on().
  const HotArcDetector& hot_arc_detector() const noexcept { return hot_arc_; }

  // --- Observation hooks (recall-oracle feeding) --------------------------

  /// Called synchronously whenever a source closes and routes an MBR batch
  /// (first publication only — not retries or refreshes).
  using MbrPublishHook = std::function<void(const MbrPayload&)>;
  /// Called synchronously whenever a similarity query is posed.
  using QueryPoseHook =
      std::function<void(std::shared_ptr<const SimilarityQuery>)>;
  void set_publish_hook(MbrPublishHook hook) {
    publish_hook_ = std::move(hook);
  }
  void set_query_hook(QueryPoseHook hook) { query_hook_ = std::move(hook); }

 private:
  using Message = routing::Message;

  void on_deliver(NodeIndex at, const Message& msg);
  void handle_mbr(NodeIndex at, const Message& msg);
  void handle_similarity_query(NodeIndex at, const Message& msg);
  void handle_inner_query(NodeIndex at, const Message& msg);
  void handle_response(NodeIndex at, const Message& msg);
  void handle_mbr_ack(NodeIndex at, const Message& msg);
  void handle_response_ack(NodeIndex at, const Message& msg);
  void handle_neighbor_digest(NodeIndex at, const Message& msg);
  void handle_location_put(NodeIndex at, const Message& msg);
  void handle_location_get(NodeIndex at, const Message& msg);
  void handle_location_reply(NodeIndex at, const Message& msg);
  void handle_replica_put(NodeIndex at, const Message& msg);
  void handle_handoff_request(NodeIndex at, const Message& msg);
  void handle_anti_entropy_digest(NodeIndex at, const Message& msg);
  void handle_anti_entropy_request(NodeIndex at, const Message& msg);
  void handle_aggregator_replica(NodeIndex at, const Message& msg);

  /// The NPER periodic body for one node: the match pass (sharded across
  /// the pool when one is attached), then dispatch_tick.
  void periodic_tick(NodeIndex index);

  /// Everything in the periodic body except the match pass itself:
  /// aggregator-replica promotion, publication pruning, filing the fresh
  /// matches, digest relays, response pushes, inner-product answers. Takes
  /// the precomputed match set so tick_all_nodes can hoist the (pure,
  /// per-node) match passes into a parallel pre-pass.
  void dispatch_tick(NodeIndex index, sim::SimTime now,
                     std::vector<SimilarityMatch> fresh);

  /// nodes_[index], growing the table for late joiners.
  MiddlewareNode& state_of(NodeIndex index);

  void schedule_tick(NodeIndex index, sim::Duration offset);

  /// Routes the MBR just closed for (node, stream): the backpressure gate
  /// (defer when the source's publish budget is spent) in front of
  /// publish_mbr.
  void route_mbr(NodeIndex source, LocalStream& stream, dsp::Mbr mbr);

  /// The actual publication body: assigns the batch_seq, stores locally,
  /// range-multicasts, and arms acks/refresh tracking.
  void publish_mbr(NodeIndex source, LocalStream& stream, dsp::Mbr mbr);

  /// Files a detected match either into the local aggregator (if this node
  /// covers the middle key) or into the outgoing digest buffer.
  void file_match_report(NodeIndex at, MatchReport report);

  /// Whether `node` covers `key` (key in (pred, node]).
  bool covers_key(NodeIndex node, Key key) const;

  /// Sends the inner-product query to its (resolved) source node.
  void dispatch_inner_query(NodeIndex client,
                            std::shared_ptr<const InnerProductQuery> query,
                            NodeIndex source);

  /// Re-asks the location service about a stream whose first resolution
  /// came back unknown (registration racing through the overlay).
  void retry_location_get(NodeIndex client, StreamId stream);

  /// Delay before retry number `attempts` (0-based) under `policy`:
  /// min(timeout * 2^attempts, max_backoff) + uniform[0, jitter).
  sim::Duration backoff_delay(const RetryPolicy& policy, int attempts);

  /// Marks (stream, batch_seq) as confirmed stored at `source`; records the
  /// heal latency when retransmissions were needed. No-op if the record is
  /// gone or already confirmed.
  void note_mbr_ack(NodeIndex source, StreamId stream, std::uint64_t seq);

  /// (Re)arms the ack timeout of a tracked publication.
  void arm_mbr_retry(NodeIndex source, StreamId stream, std::uint64_t seq);
  void on_mbr_ack_timeout(NodeIndex source, StreamId stream,
                          std::uint64_t seq);

  /// Emits a self-healing trace event (retry/heal/refresh) under the
  /// publication's trace id when a trace sink is attached.
  void emit_heal_trace(obs::TraceEventKind event, NodeIndex node,
                       StreamId stream, std::uint64_t seq,
                       std::uint64_t trace_id);

  /// Soft-state refresh body for one node: re-route every live published
  /// batch and re-register local streams with the location service.
  void refresh_node_mbrs(NodeIndex index);
  void schedule_mbr_refresh(NodeIndex index, sim::Duration offset);

  // --- Replication & failover helpers -------------------------------------

  /// Whether the replication layer is on.
  bool replication_on() const noexcept {
    return config_.replication_factor > 0;
  }

  /// Mirrors one just-stored MBR batch to `at`'s replica set. Called by the
  /// key-range owner only (the node covering the range's hi end), so each
  /// batch is mirrored once per publication.
  void mirror_mbr(NodeIndex at, const IndexStore::StoredMbr& entry);

  /// Mirrors one just-installed subscription to `at`'s replica set.
  void mirror_subscription(NodeIndex at, const IndexStore::Subscription& sub);

  /// Mirrors one freshly filed match of a locally aggregated query to the
  /// middle key's replica set (incremental AggregatorRecord replication).
  void mirror_aggregation(NodeIndex at, QueryId query,
                          const AggregatorRecord& record, Key middle_key,
                          const SimilarityMatch& match);

  /// Promotes expired-owner mirrors: any AggregationReplica whose middle key
  /// now falls on this node's arc becomes a live AggregatorRecord. Runs at
  /// the head of each periodic tick.
  void promote_aggregation_replicas(NodeIndex index, sim::SimTime now);

  /// Anti-entropy body for one node: digest of its owned arc to its replica
  /// set.
  void anti_entropy_tick(NodeIndex index);
  void schedule_anti_entropy(NodeIndex index, sim::Duration offset);

  /// Emits a replication-layer trace event (replicate/handoff/repair/
  /// failover) when a trace sink is attached.
  void emit_replication_trace(obs::TraceEventKind event, NodeIndex node,
                              StreamId stream, std::uint64_t seq);

  /// Approximate wire size of handoff payload entries (handoff_bytes
  /// accounting).
  static std::size_t mbr_entry_bytes(const IndexStore::StoredMbr& entry);
  static std::size_t subscription_entry_bytes(
      const IndexStore::Subscription& sub);

  // --- Overload-control helpers --------------------------------------------

  /// Credits `units` of index work to `node`: feeds both the per-window
  /// hot-arc counters and the exported per-node work totals. Serial-path
  /// call sites only (determinism).
  void note_node_work(NodeIndex node, std::uint64_t units);

  /// The store body shared by handle_mbr's split and non-split paths:
  /// add_mbr with duplicate accounting, work credit, and the replica-set
  /// mirror when this node owns the range's hi end. Returns whether the
  /// entry was freshly stored.
  bool store_mbr_with_work(NodeIndex at, const Message& msg,
                           const MbrPayload& payload, sim::SimTime now);

  /// The load-shedding gate for one delivered MBR store attempt at `at`.
  /// Returns true when the store must be skipped; the drop is then already
  /// accounted (kShedOverload via the routing drop path + shed_mbrs).
  bool shed_ingest(NodeIndex at, const Message& msg);

  /// Where a hot node's store lands within its split group: itself
  /// (kInvalidNode = keep local) or one of its delegates, chosen by a
  /// deterministic hash of (stream, batch_seq).
  NodeIndex divert_target(const MiddlewareNode& state, StreamId stream,
                          std::uint64_t batch_seq) const;

  /// Forwards one store entry to a split delegate via kReplicaPut
  /// (idempotent at the receiver).
  void divert_store(NodeIndex at, NodeIndex target,
                    const IndexStore::StoredMbr& entry);

  /// Mirrors every live subscription of `node` to its split delegates so
  /// diverted MBRs still meet the subscriptions they must match.
  void mirror_subscriptions_to_delegates(NodeIndex node);

  /// Forwards one freshly installed subscription to `node`'s delegates
  /// (keeps the split group matching while hot).
  void forward_subscription_to_delegates(
      NodeIndex node, const IndexStore::Subscription& sub);

  /// Source-side deferral: queues the closed batch; on queue overflow the
  /// oldest deferred batch is dropped as accounted kBackpressure.
  void defer_publication(NodeIndex source, StreamId stream, dsp::Mbr mbr);

  /// The global detector window: harvests + resets per-node work counters,
  /// applies split/merge transitions, and drains deferral queues into the
  /// fresh publish budgets. Runs serially off the simulator.
  void overload_tick();

  /// Accounts one overload-layer drop (shed or backpressure) through the
  /// routing drop path so it lands in drops_by_cause, the registry series,
  /// and the trace stream like every other loss.
  void account_overload_drop(fault::DropCause cause, NodeIndex origin);

  routing::RoutingSystem& routing_;
  MiddlewareConfig config_;
  SummaryMapper mapper_;
  /// The pluggable summary/key-map pair; never null (defaults to "dft").
  std::unique_ptr<IndexingStrategy> strategy_;
  /// Scratch for multi-range strategies' probe sets (serial paths only).
  std::vector<std::pair<Key, Key>> range_scratch_;
  MetricsCollector metrics_;
  /// Parallel engine for the hot paths; null when threads resolves to 1, so
  /// the serial path carries zero pool overhead.
  std::unique_ptr<WorkerPool> pool_;
  std::vector<MiddlewareNode> nodes_;
  std::unordered_map<QueryId, ClientQueryRecord> client_records_;
  QueryId next_query_id_ = 1;
  std::uint64_t mbrs_routed_ = 0;
  bool started_ = false;
  common::Pcg32 rng_;  // retry jitter (seeded from config; reproducible)
  MbrPublishHook publish_hook_;
  QueryPoseHook query_hook_;
  HotArcDetector hot_arc_;  // overload layer; empty unless config.overload
};

}  // namespace sdsi::core
