// Fixed-size worker pool for the embarrassingly parallel phases of the
// simulation: per-node IndexStore::match passes (nodes are independent
// between message deliveries) and per-stream summarization during ingest
// bursts.
//
// Design goals, in order:
//
//   1. Determinism. parallel_for / parallel_chunks are pure fan-out/join
//      primitives: the caller supplies a body indexed by item, every result
//      lands in a caller-owned slot keyed by that index, and the join is a
//      full barrier. Which thread ran which chunk is unobservable, so a run
//      at --threads N is byte-identical to --threads 1 by construction.
//   2. Graceful degradation. With one thread (explicitly, or because
//      hardware_concurrency() is unknown) no worker is ever spawned and
//      every body runs inline on the caller's stack — zero overhead over
//      the serial path (inline_mode()).
//   3. TSAN-cleanliness. All cross-thread edges are a mutex/condvar pair
//      plus one atomic chunk cursor; job completion is published under the
//      mutex, so the caller's post-barrier reads are happens-after every
//      worker write.
//
// The pool is NOT reentrant: a body must never call back into the same
// pool (checked). Scheduling is chunked self-claiming (a degenerate
// work-stealing deque: one shared tail, no per-thread deques), which keeps
// load balanced when per-item cost is skewed without any unsafely shared
// state.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sdsi::core {

class WorkerPool {
 public:
  /// Body of a chunked job: processes items [begin, end).
  using ChunkFn = std::function<void(std::size_t begin, std::size_t end)>;
  /// Body of an indexed job: processes one item.
  using IndexFn = std::function<void(std::size_t index)>;

  /// `threads` == 0 resolves to hardware_concurrency() (1 when unknown).
  /// `threads` == 1 never spawns an OS thread (inline mode).
  explicit WorkerPool(std::size_t threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total execution lanes, including the calling thread. >= 1.
  std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// True when no OS thread was spawned and every job runs on the caller.
  bool inline_mode() const noexcept { return workers_.empty(); }

  /// What `threads == 0` resolves to on this host (>= 1; 1 when the
  /// hardware concurrency is unknown).
  static std::size_t resolve(std::size_t threads) noexcept;

  /// Runs fn(begin, end) over disjoint chunks covering [0, count), about
  /// `grain` items each, across the pool + the calling thread. Blocks until
  /// every chunk completed (barrier: all body writes happen-before return).
  /// grain == 0 picks a chunk size that yields ~4 chunks per lane.
  void parallel_chunks(std::size_t count, std::size_t grain,
                       const ChunkFn& fn);

  /// Runs fn(i) for every i in [0, count); same barrier semantics.
  void parallel_for(std::size_t count, const IndexFn& fn);

 private:
  struct Job {
    const ChunkFn* body = nullptr;
    std::size_t count = 0;
    std::size_t grain = 1;
    std::size_t chunks = 0;
    std::atomic<std::size_t> next{0};  // first unclaimed item
    std::size_t completed = 0;         // chunks done (guarded by mutex_)
  };

  void worker_loop();
  /// Claims and runs chunks of `job` until none remain.
  void run_chunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait here for a job
  std::condition_variable done_cv_;  // the caller waits here for the barrier
  std::shared_ptr<Job> job_;         // current job; null when idle
  std::uint64_t generation_ = 0;     // bumped per job so workers never rerun
  bool stop_ = false;
};

}  // namespace sdsi::core
