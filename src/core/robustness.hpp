// Degradation measurement: recall against a fault-free oracle.
//
// The oracle is a shadow IndexStore fed OUT OF BAND (no routing, no loss, no
// crashes) with every MBR batch the sources publish and every similarity
// query the clients pose. Sampling it with the brute-force matcher yields
// the set of (query, stream) pairs an ideal fault-free system would report.
// Recall of a real (possibly chaotic) run is then
//
//   |pairs the clients actually received  ∩  oracle pairs|
//   ----------------------------------------------------- ,
//                     |oracle pairs|
//
// restricted to queries whose client never crashed (a dead client's losses
// are its own, not the index's). Because the shadow store sees publications
// instantly, the oracle strictly upper-bounds any real run — the fault-free
// run's recall is the fair reference ceiling, reported alongside.
#pragma once

#include <memory>
#include <set>
#include <utility>

#include "core/index_store.hpp"

namespace sdsi::core {

class RecallOracle {
 public:
  /// Mirrors one published MBR batch into the shadow store (idempotent via
  /// the store's (stream, batch_seq) dedup, so refreshes are free to call).
  void on_publish(const MbrPayload& payload, sim::SimTime now);

  /// Mirrors one similarity subscription.
  void on_subscribe(std::shared_ptr<const SimilarityQuery> query);

  /// Runs the brute-force matcher at `now`, accumulating every fresh
  /// (query, stream) pair into the oracle set.
  void sample(sim::SimTime now);

  const std::set<std::pair<QueryId, StreamId>>& pairs() const noexcept {
    return pairs_;
  }

 private:
  IndexStore shadow_;
  std::set<std::pair<QueryId, StreamId>> pairs_;
};

}  // namespace sdsi::core
