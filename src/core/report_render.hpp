// Shared text renderers for the experiment reports.
//
// Every surface that prints a load decomposition or a drops-by-cause table
// (tools/sdsi_sim, bench/bench_robustness, ...) derives its labels from the
// same two enum->name functions (load_component_name, drop_cause_name), so
// a renamed or added component shows up everywhere at once instead of
// drifting apart in hand-maintained header lists.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"

namespace sdsi::core {

/// Fig 6(a): one row per load component plus a TOTAL row.
common::TextTable render_load_table(const LoadReport& load);

/// One run's drops: one row per cause plus a TOTAL row.
common::TextTable render_drops_table(
    const std::array<std::uint64_t,
                     static_cast<std::size_t>(fault::DropCause::kCount)>&
        drops_by_cause);

/// Column headers for a scenario-per-row drops table:
/// {label, <cause names in DropCause order>, "Total"}.
std::vector<std::string> drop_cause_columns(const std::string& label);

}  // namespace sdsi::core
