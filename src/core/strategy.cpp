#include "core/strategy.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/lsh_map.hpp"
#include "core/mapper.hpp"
#include "streams/ecm_sketch.hpp"
#include "streams/summarizer.hpp"

namespace sdsi::core {

const char* strategy_name(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::kDft: return "dft";
    case StrategyKind::kEcm: return "ecm";
    case StrategyKind::kLsh: return "lsh";
  }
  return "dft";
}

std::optional<StrategyKind> parse_strategy(std::string_view name) noexcept {
  if (name == "dft") return StrategyKind::kDft;
  if (name == "ecm") return StrategyKind::kEcm;
  if (name == "lsh") return StrategyKind::kLsh;
  return std::nullopt;
}

std::optional<dsp::FeatureVector> Summarizer::features() const {
  dsp::FeatureVector out;
  if (!features_into(out)) {
    return std::nullopt;
  }
  return out;
}

void ContentKeyMap::mbr_ranges(const dsp::Mbr& mbr,
                               std::vector<std::pair<Key, Key>>& out) const {
  out.clear();
  out.push_back(mbr_range(mbr));
}

void ContentKeyMap::query_ranges(const dsp::FeatureVector& features,
                                 double radius,
                                 std::vector<std::pair<Key, Key>>& out) const {
  out.clear();
  out.push_back(query_range(features, radius));
}

namespace {

// --- dft: the paper's pipeline, adapted verbatim -----------------------------

/// Wraps streams::StreamSummarizer; every call forwards unchanged, so the
/// dft strategy computes bit-identical features to the pre-strategy code.
class DftSummarizer final : public Summarizer {
 public:
  explicit DftSummarizer(dsp::FeatureConfig config)
      : inner_(config), config_(config) {}

  void push(Sample value) override { inner_.push(value); }
  void push_span(std::span<const Sample> values) override {
    inner_.push_span(values);
  }
  bool ready() const noexcept override { return inner_.ready(); }
  std::size_t samples_until_ready() const noexcept override {
    return inner_.samples_until_ready();
  }
  std::uint64_t samples_seen() const noexcept override {
    return inner_.samples_seen();
  }
  bool features_into(dsp::FeatureVector& out) const override {
    return inner_.features_into(out);
  }

  bool approx_window(std::vector<Sample>& out) const override {
    // Eq. 7 reconstruction, then undo the normalization so the product is
    // on the raw data scale (the synopsis-owning node knows the window
    // mean and norm). Exactly the arithmetic the middleware inlined before
    // the strategy split — the equivalence gate pins it.
    const std::optional<dsp::FeatureVector> features = inner_.features();
    if (!features.has_value()) {
      return false;
    }
    out = dsp::reconstruct(*features, config_);
    const double denom = inner_.normalization_denominator();
    const double mu =
        config_.normalization == dsp::Normalization::kZNormalize
            ? inner_.window_mean()
            : 0.0;
    for (Sample& x : out) {
      x = x * denom + mu;
    }
    return true;
  }

 private:
  streams::StreamSummarizer inner_;
  dsp::FeatureConfig config_;
};

/// Delegates to the Eq. 6 interval map (core/mapper.hpp). Shared by the dft
/// and ecm strategies — any embedding with coordinates in [-1, 1] maps
/// monotonically onto the ring.
class IntervalKeyMap final : public ContentKeyMap {
 public:
  explicit IntervalKeyMap(common::IdSpace space) : mapper_(space) {}

  Key key_for(const dsp::FeatureVector& features) const override {
    return mapper_.key_for(features);
  }
  std::pair<Key, Key> mbr_range(const dsp::Mbr& mbr) const override {
    return mapper_.mbr_range(mbr);
  }
  std::pair<Key, Key> query_range(const dsp::FeatureVector& features,
                                  double radius) const override {
    return mapper_.query_range(features, radius);
  }

 private:
  SummaryMapper mapper_;
};

class DftStrategy final : public IndexingStrategy {
 public:
  DftStrategy(dsp::FeatureConfig features, common::IdSpace space)
      : IndexingStrategy(StrategyKind::kDft, features), map_(space) {}

  std::unique_ptr<Summarizer> make_summarizer() const override {
    return std::make_unique<DftSummarizer>(features());
  }
  const ContentKeyMap& key_map() const override { return map_; }
  dsp::FeatureVector features_from_window(
      std::span<const Sample> window) const override {
    return dsp::extract_features(window, features());
  }

 private:
  IntervalKeyMap map_;
};

// --- ecm: sketch summarizer over the Eq. 6 map -------------------------------

class EcmSummarizer final : public Summarizer {
 public:
  explicit EcmSummarizer(streams::EcmStreamSummarizer::Options options)
      : inner_(options) {}

  void push(Sample value) override { inner_.push(value); }
  void push_span(std::span<const Sample> values) override {
    inner_.push_span(values);
  }
  bool ready() const noexcept override { return inner_.ready(); }
  std::size_t samples_until_ready() const noexcept override {
    return inner_.samples_until_ready();
  }
  std::uint64_t samples_seen() const noexcept override {
    return inner_.samples_seen();
  }
  bool features_into(dsp::FeatureVector& out) const override {
    return inner_.features_into(out);
  }
  bool approx_window(std::vector<Sample>& out) const override {
    // The sketch is what gets routed; the source node still holds the exact
    // ring, so local inner-product answers use it directly (strictly better
    // than a reconstruction).
    if (!inner_.ready()) {
      return false;
    }
    inner_.copy_window(out);
    return true;
  }

 private:
  streams::EcmStreamSummarizer inner_;
};

class EcmStrategy final : public IndexingStrategy {
 public:
  EcmStrategy(const EcmOptions& options, dsp::FeatureConfig features,
              common::IdSpace space)
      : IndexingStrategy(StrategyKind::kEcm, features),
        options_(options),
        map_(space) {
    SDSI_CHECK(options_.bins >= 2 && options_.bins % 2 == 0);
  }

  std::unique_ptr<Summarizer> make_summarizer() const override {
    return std::make_unique<EcmSummarizer>(summarizer_options());
  }
  const ContentKeyMap& key_map() const override { return map_; }
  dsp::FeatureVector features_from_window(
      std::span<const Sample> window) const override {
    // Queries quantize by the window's own statistics (a query carries no
    // stream history), mirroring what a stream's running scale converges to.
    streams::EcmStreamSummarizer probe(summarizer_options_for(window.size()));
    probe.push_span(window);
    dsp::FeatureVector out;
    if (!probe.features_into(out)) {
      // Degenerate window: an empty histogram has no direction; pin the
      // central bin so the query still routes deterministically.
      const auto coeffs = out.overwrite(options_.bins / 2);
      std::fill(coeffs.begin(), coeffs.end(), dsp::Complex(0.0, 0.0));
      coeffs[0] = dsp::Complex(1.0, 0.0);
    }
    return out;
  }

 private:
  streams::EcmStreamSummarizer::Options summarizer_options() const {
    return summarizer_options_for(features().window_size);
  }
  streams::EcmStreamSummarizer::Options summarizer_options_for(
      std::size_t window) const {
    streams::EcmStreamSummarizer::Options options;
    options.window = window;
    options.bins = options_.bins;
    options.z_span = options_.z_span;
    options.width = options_.width;
    options.depth = options_.depth;
    options.eh_k = options_.eh_k;
    options.seed = options_.seed;
    return options;
  }

  EcmOptions options_;
  IntervalKeyMap map_;
};

// --- lsh: signed-random-projection bucket routing ----------------------------

class LshStrategy final : public IndexingStrategy {
 public:
  LshStrategy(const LshOptions& options, dsp::FeatureConfig features,
              common::IdSpace space)
      : IndexingStrategy(StrategyKind::kLsh, features),
        map_(options, 2 * features.num_coefficients, space) {}

  std::unique_ptr<Summarizer> make_summarizer() const override {
    return std::make_unique<DftSummarizer>(features());
  }
  const ContentKeyMap& key_map() const override { return map_; }
  dsp::FeatureVector features_from_window(
      std::span<const Sample> window) const override {
    return dsp::extract_features(window, features());
  }

 private:
  LshKeyMap map_;
};

}  // namespace

std::unique_ptr<IndexingStrategy> IndexingStrategy::make(
    const StrategyOptions& options, dsp::FeatureConfig features,
    common::IdSpace space) {
  switch (options.kind) {
    case StrategyKind::kDft:
      return std::make_unique<DftStrategy>(features, space);
    case StrategyKind::kEcm: {
      EcmOptions ecm = options.ecm;
      return std::make_unique<EcmStrategy>(ecm, features, space);
    }
    case StrategyKind::kLsh:
      return std::make_unique<LshStrategy>(options.lsh, features, space);
  }
  SDSI_CHECK(false && "unknown StrategyKind");
  return nullptr;
}

}  // namespace sdsi::core
