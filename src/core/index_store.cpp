#include "core/index_store.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/worker_pool.hpp"

namespace sdsi::core {

bool IndexStore::add_mbr(StoredMbr entry) {
  SDSI_CHECK(!entry.mbr.empty());
  if (dead(entry)) {
    return false;  // arrived past its own lifespan: never observable
  }
  SDSI_CHECK(mbrs_.size() < std::numeric_limits<std::uint32_t>::max());
  const auto pos = static_cast<std::uint32_t>(mbrs_.size());
  const MbrKey key{entry.stream, entry.batch_seq};
  const auto [it, inserted] = by_key_.try_emplace(key, pos);
  if (!inserted) {
    if (!dead(mbrs_[it->second])) {
      return false;  // duplicate delivery of a live batch: idempotent
    }
    it->second = pos;  // prior copy lapsed; this one supersedes it
  }
  mbr_expiry_.push(MbrExpiry{entry.expires, pos});
  mbrs_.push_back(std::move(entry));
  ++alive_mbrs_;
  return true;
}

void IndexStore::add_subscription(
    std::shared_ptr<const SimilarityQuery> query, Key middle_key,
    sim::SimTime expires) {
  SDSI_CHECK(query != nullptr);
  const QueryId id = query->id;
  auto [it, inserted] = subscriptions_.try_emplace(id);
  if (inserted) {
    it->second.query = std::move(query);
    it->second.middle_key = middle_key;
  }
  it->second.expires = expires;
  // A refresh leaves the earlier heap entry behind; expire() recognizes it
  // as stale because the live expires moved past it.
  sub_expiry_.push(SubExpiry{expires, id});
}

void IndexStore::expire(sim::SimTime now) {
  if (now > horizon_) {
    horizon_ = now;
  }
  while (!mbr_expiry_.empty() && mbr_expiry_.top().expires <= now) {
    mbr_expiry_.pop();
    --alive_mbrs_;
  }
  // Compact once tombstones dominate the slab: amortized O(1) per entry.
  const std::size_t tombstones = mbrs_.size() - alive_mbrs_;
  if (tombstones > 64 && tombstones * 2 > mbrs_.size()) {
    compact();
  }
  while (!sub_expiry_.empty() && sub_expiry_.top().expires <= now) {
    const SubExpiry lane = sub_expiry_.top();
    sub_expiry_.pop();
    const auto it = subscriptions_.find(lane.id);
    if (it != subscriptions_.end() && it->second.expires <= now) {
      subscriptions_.erase(it);
    }
  }
}

void IndexStore::merge_pending() {
  const auto old_size = static_cast<std::ptrdiff_t>(sorted_.size());
  sorted_.reserve(mbrs_.size());
  for (std::size_t pos = indexed_limit_; pos < mbrs_.size(); ++pos) {
    const StoredMbr& entry = mbrs_[pos];
    if (dead(entry)) {
      continue;
    }
    const double low = entry.mbr.routing_low();
    const double high = entry.mbr.routing_high();
    sorted_.push_back(IntervalRef{low, high, static_cast<std::uint32_t>(pos),
                                  entry.stream, entry.expires});
    max_extent_ = std::max(max_extent_, high - low);
  }
  indexed_limit_ = mbrs_.size();
  const auto by_low = [](const IntervalRef& a, const IntervalRef& b) {
    return a.low < b.low;
  };
  std::sort(sorted_.begin() + old_size, sorted_.end(), by_low);
  std::inplace_merge(sorted_.begin(), sorted_.begin() + old_size,
                     sorted_.end(), by_low);
}

void IndexStore::compact() {
  std::erase_if(mbrs_, [this](const StoredMbr& entry) { return dead(entry); });
  alive_mbrs_ = mbrs_.size();

  by_key_.clear();
  by_key_.reserve(mbrs_.size());
  for (std::size_t pos = 0; pos < mbrs_.size(); ++pos) {
    by_key_.try_emplace(MbrKey{mbrs_[pos].stream, mbrs_[pos].batch_seq},
                        static_cast<std::uint32_t>(pos));
  }

  std::vector<MbrExpiry> lanes;
  lanes.reserve(mbrs_.size());
  std::vector<IntervalRef> refs;
  refs.reserve(mbrs_.size());
  max_extent_ = 0.0;
  for (std::size_t pos = 0; pos < mbrs_.size(); ++pos) {
    const StoredMbr& entry = mbrs_[pos];
    lanes.push_back(MbrExpiry{entry.expires, static_cast<std::uint32_t>(pos)});
    const double low = entry.mbr.routing_low();
    const double high = entry.mbr.routing_high();
    refs.push_back(IntervalRef{low, high, static_cast<std::uint32_t>(pos),
                               entry.stream, entry.expires});
    max_extent_ = std::max(max_extent_, high - low);
  }
  mbr_expiry_ = MinHeap<MbrExpiry>(std::greater<MbrExpiry>{},
                                   std::move(lanes));
  std::sort(refs.begin(), refs.end(),
            [](const IntervalRef& a, const IntervalRef& b) {
              return a.low < b.low;
            });
  sorted_ = std::move(refs);
  indexed_limit_ = mbrs_.size();
}

void IndexStore::match_subscription(QueryId id, Subscription& sub,
                                    sim::SimTime now,
                                    std::vector<SimilarityMatch>& out,
                                    std::uint64_t& scanned) const {
  // expire(now) already dropped lapsed subscriptions, so the per-pair
  // expiry re-checks of the brute-force scan are gone; assert the lane
  // invariant instead.
  SDSI_DCHECK(sub.expires > now);
  const SimilarityQuery& query = *sub.query;
  const double center = query.features.routing_coordinate();
  const double query_low = center - query.radius;
  const double query_high = center + query.radius;
  // Candidates must satisfy low <= query_high and high >= query_low; with
  // high <= low + max_extent_ the second condition bounds the search to
  // low >= query_low - max_extent_, so both ends binary-search.
  const double scan_from = query_low - max_extent_;
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), scan_from,
      [](const IntervalRef& ref, double value) { return ref.low < value; });
  for (; it != sorted_.end() && it->low <= query_high; ++it) {
    ++scanned;
    if (it->high < query_low) {
      continue;  // first-dim gap alone already exceeds the radius
    }
    if (it->expires <= horizon_) {
      continue;  // lazily-deleted slot awaiting compaction
    }
    if (sub.reported.contains(it->stream)) {
      continue;
    }
    // Only a surviving candidate touches the cold slab, for the full
    // multi-dimensional lower bound.
    const StoredMbr& entry = mbrs_[it->pos];
    const double bound = entry.mbr.min_distance(query.features);
    if (bound <= query.radius) {
      sub.reported.insert(entry.stream);
      out.push_back(SimilarityMatch{id, entry.stream, bound, now});
    }
  }
}

std::vector<SimilarityMatch> IndexStore::match(sim::SimTime now,
                                               WorkerPool* pool) {
  expire(now);
  if (indexed_limit_ < mbrs_.size()) {
    merge_pending();
  }
  std::vector<SimilarityMatch> fresh;
  // Visit subscriptions in canonical ascending-id order: the pass's output
  // order (and thus the downstream report/ack message sequence) must be a
  // function of the stored state, not of the container's insert/erase
  // history.
  std::vector<std::pair<QueryId, Subscription>*> subs;
  subs.reserve(subscriptions_.size());
  for (auto& entry : subscriptions_) {
    subs.push_back(&entry);
  }
  std::sort(subs.begin(), subs.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  // Below this many subscriptions a fan-out costs more than it saves; the
  // serial path is also the reference the sharded one must reproduce.
  constexpr std::size_t kParallelThreshold = 4;
  last_match_work_ = 0;
  if (pool == nullptr || pool->thread_count() <= 1 ||
      subs.size() < kParallelThreshold) {
    for (auto* entry : subs) {
      match_subscription(entry->first, entry->second, now, fresh,
                         last_match_work_);
    }
    return fresh;
  }
  // Sharded pass: every task owns its subscription (and its `reported` set)
  // exclusively, while the slab and interval index stay frozen, so the only
  // coordination is the pool's end-of-pass barrier. Concatenating the shard
  // outputs in the canonical order makes the result identical to the serial
  // loop.
  std::vector<std::vector<SimilarityMatch>> shards(subs.size());
  std::vector<std::uint64_t> scanned(subs.size(), 0);
  pool->parallel_for(subs.size(), [&](std::size_t i) {
    match_subscription(subs[i]->first, subs[i]->second, now, shards[i],
                       scanned[i]);
  });
  for (const std::uint64_t n : scanned) {
    last_match_work_ += n;
  }
  std::size_t total = 0;
  for (const auto& shard : shards) {
    total += shard.size();
  }
  fresh.reserve(total);
  for (auto& shard : shards) {
    fresh.insert(fresh.end(), shard.begin(), shard.end());
  }
  return fresh;
}

std::vector<SimilarityMatch> IndexStore::match_brute_force(sim::SimTime now) {
  std::vector<SimilarityMatch> fresh;
  std::vector<std::pair<QueryId, Subscription>*> order;
  order.reserve(subscriptions_.size());
  for (auto& entry : subscriptions_) {
    order.push_back(&entry);
  }
  std::sort(order.begin(), order.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (auto* item : order) {
    const QueryId id = item->first;
    Subscription& sub = item->second;
    if (sub.expires <= now) {
      continue;
    }
    const SimilarityQuery& query = *sub.query;
    for (const StoredMbr& entry : mbrs_) {
      if (entry.expires <= now || sub.reported.contains(entry.stream)) {
        continue;
      }
      const double bound = entry.mbr.min_distance(query.features);
      if (bound <= query.radius) {
        sub.reported.insert(entry.stream);
        fresh.push_back(SimilarityMatch{id, entry.stream, bound, now});
      }
    }
  }
  return fresh;
}

std::vector<IndexStore::StoredMbr> IndexStore::mbrs() const {
  std::vector<StoredMbr> out;
  out.reserve(alive_mbrs_);
  for (const StoredMbr& entry : mbrs_) {
    if (!dead(entry)) {
      out.push_back(entry);
    }
  }
  return out;
}

const IndexStore::Subscription* IndexStore::find_subscription(
    QueryId id) const {
  const auto it = subscriptions_.find(id);
  return it == subscriptions_.end() ? nullptr : &it->second;
}

bool IndexStore::contains_mbr(StreamId stream,
                              std::uint64_t batch_seq) const {
  return find_mbr(stream, batch_seq) != nullptr;
}

const IndexStore::StoredMbr* IndexStore::find_mbr(
    StreamId stream, std::uint64_t batch_seq) const {
  const auto it = by_key_.find(MbrKey{stream, batch_seq});
  if (it == by_key_.end()) {
    return nullptr;
  }
  const StoredMbr& entry = mbrs_[it->second];
  return dead(entry) ? nullptr : &entry;
}

}  // namespace sdsi::core
