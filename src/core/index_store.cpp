#include "core/index_store.hpp"

#include <algorithm>

namespace sdsi::core {

void IndexStore::add_subscription(
    std::shared_ptr<const SimilarityQuery> query, Key middle_key,
    sim::SimTime expires) {
  SDSI_CHECK(query != nullptr);
  const QueryId id = query->id;
  auto [it, inserted] = subscriptions_.try_emplace(id);
  if (inserted) {
    it->second.query = std::move(query);
    it->second.middle_key = middle_key;
  }
  it->second.expires = expires;
}

void IndexStore::expire(sim::SimTime now) {
  std::erase_if(mbrs_,
                [now](const StoredMbr& entry) { return entry.expires <= now; });
  std::erase_if(subscriptions_, [now](const auto& pair) {
    return pair.second.expires <= now;
  });
}

std::vector<SimilarityMatch> IndexStore::match(sim::SimTime now) {
  std::vector<SimilarityMatch> fresh;
  for (auto& [id, sub] : subscriptions_) {
    if (sub.expires <= now) {
      continue;
    }
    const SimilarityQuery& query = *sub.query;
    for (const StoredMbr& entry : mbrs_) {
      if (entry.expires <= now || sub.reported.contains(entry.stream)) {
        continue;
      }
      const double bound = entry.mbr.min_distance(query.features);
      if (bound <= query.radius) {
        sub.reported.insert(entry.stream);
        fresh.push_back(SimilarityMatch{id, entry.stream, bound, now});
      }
    }
  }
  return fresh;
}

const IndexStore::Subscription* IndexStore::find_subscription(
    QueryId id) const {
  const auto it = subscriptions_.find(id);
  return it == subscriptions_.end() ? nullptr : &it->second;
}

}  // namespace sdsi::core
