#include "core/metrics.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"

namespace sdsi::core {

LoadComponent component_of(const routing::Message& msg, bool transit) {
  switch (msg.kind) {
    case MsgKind::kInvalid:
      break;  // falls through to the abort below: never on a live message
    case MsgKind::kMbrUpdate:
      return transit ? LoadComponent::kMbrTransit
                     : (msg.range_internal ? LoadComponent::kMbrInternal
                                           : LoadComponent::kMbrSource);
    case MsgKind::kSimilarityQuery:
    case MsgKind::kInnerProductQuery:
    case MsgKind::kLocationPut:
    case MsgKind::kLocationGet:
    case MsgKind::kLocationReply:
      return LoadComponent::kQueries;  // "all query messages" (Fig 6a d)
    case MsgKind::kResponse:
      return transit ? LoadComponent::kResponsesTransit
                     : LoadComponent::kResponses;
    case MsgKind::kNeighborExchange:
      return LoadComponent::kResponsesInternal;
    case MsgKind::kMbrAck:
    case MsgKind::kResponseAck:
    case MsgKind::kHeartbeat:
      return LoadComponent::kControl;
    case MsgKind::kReplicaPut:
    case MsgKind::kHandoffRequest:
    case MsgKind::kAntiEntropyDigest:
    case MsgKind::kAntiEntropyRequest:
    case MsgKind::kAggregatorReplica:
      return LoadComponent::kReplication;
  }
  SDSI_CHECK(false && "unknown MsgKind");
  return LoadComponent::kQueries;
}

MetricsCollector::MetricsCollector(std::size_t num_nodes)
    : per_node_(num_nodes), work_per_node_(num_nodes, 0) {}

void MetricsCollector::set_registry(obs::MetricsRegistry* registry) {
  registry_ = registry;
  series_ = RegistrySeries{};
  if (registry == nullptr) {
    return;
  }
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(LoadComponent::kCount); ++i) {
    const auto component = static_cast<LoadComponent>(i);
    series_.load[i] = &registry->counter(std::string("load.") +
                                         load_component_slug(component));
  }
  series_.load_total = &registry->counter("load.total");
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(fault::DropCause::kCount); ++i) {
    const auto cause = static_cast<fault::DropCause>(i);
    series_.drops[i] =
        &registry->counter(std::string("drops.") + fault::drop_cause_slug(cause));
  }
  series_.drops_total = &registry->counter("drops.total");
  series_.deliver_latency = &registry->histogram("latency.deliver_ms");
  series_.range_walk_latency = &registry->histogram("latency.range_walk_ms");
}

void MetricsCollector::reset() {
  for (auto& counters : per_node_) {
    counters.fill(0);
  }
  std::fill(work_per_node_.begin(), work_per_node_.end(), 0);
  mbr_ = CategoryCounters{};
  query_ = CategoryCounters{};
  response_ = CategoryCounters{};
  neighbor_ = CategoryCounters{};
  location_ = CategoryCounters{};
  control_ = CategoryCounters{};
  replication_ = CategoryCounters{};
  drops_by_cause_.fill(0);
  robustness_ = RobustnessCounters{};
}

CategoryCounters& MetricsCollector::category(const routing::Message& msg) {
  switch (msg.kind) {
    case MsgKind::kInvalid:
      break;
    case MsgKind::kMbrUpdate:
      return mbr_;
    case MsgKind::kSimilarityQuery:
    case MsgKind::kInnerProductQuery:
      return query_;
    case MsgKind::kResponse:
      return response_;
    case MsgKind::kNeighborExchange:
      return neighbor_;
    case MsgKind::kLocationPut:
    case MsgKind::kLocationGet:
    case MsgKind::kLocationReply:
      return location_;
    case MsgKind::kMbrAck:
    case MsgKind::kResponseAck:
    case MsgKind::kHeartbeat:
      return control_;
    case MsgKind::kReplicaPut:
    case MsgKind::kHandoffRequest:
    case MsgKind::kAntiEntropyDigest:
    case MsgKind::kAntiEntropyRequest:
    case MsgKind::kAggregatorReplica:
      return replication_;
  }
  SDSI_CHECK(false);
}

void MetricsCollector::add_node_load(NodeIndex node,
                                     const routing::Message& msg,
                                     bool transit) {
  if (node >= per_node_.size()) {
    return;
  }
  const LoadComponent component = component_of(msg, transit);
  ++per_node_[node][static_cast<std::size_t>(component)];
}

void MetricsCollector::on_send(NodeIndex from, const routing::Message& msg) {
  // Registry series deliberately run ahead of the warm-up gate: the
  // time-series view covers the whole run (set_registry has the rationale).
  if (registry_ != nullptr) {
    const auto c = static_cast<std::size_t>(component_of(msg, false));
    series_.load[c]->add();
    series_.load_total->add();
  }
  if (!enabled_) {
    return;
  }
  CategoryCounters& cat = category(msg);
  if (msg.range_internal) {
    ++cat.range_internal;
  } else {
    ++cat.originated;
  }
  add_node_load(from, msg, /*transit=*/false);
}

void MetricsCollector::on_transit(NodeIndex via, const routing::Message& msg) {
  if (registry_ != nullptr) {
    const auto c = static_cast<std::size_t>(component_of(msg, true));
    series_.load[c]->add();
    series_.load_total->add();
  }
  if (!enabled_) {
    return;
  }
  ++category(msg).transit;
  add_node_load(via, msg, /*transit=*/true);
}

void MetricsCollector::on_deliver(NodeIndex at, const routing::Message& msg) {
  if (registry_ != nullptr) {
    const auto c = static_cast<std::size_t>(component_of(msg, false));
    series_.load[c]->add();
    series_.load_total->add();
    if (clock_ != nullptr) {
      const double elapsed = (clock_->now() - msg.sent_at).as_millis();
      if (msg.range_internal) {
        series_.range_walk_latency->add(elapsed);
      } else {
        series_.deliver_latency->add(elapsed);
      }
    }
  }
  if (!enabled_) {
    return;
  }
  CategoryCounters& cat = category(msg);
  ++cat.delivered;
  if (msg.range_internal) {
    cat.hops_internal.add(static_cast<double>(msg.hops));
  } else {
    cat.hops_routed.add(static_cast<double>(msg.hops));
  }
  if (clock_ != nullptr) {
    const double elapsed = (clock_->now() - msg.sent_at).as_millis();
    if (msg.range_internal) {
      cat.range_latency_ms.add(elapsed);
    } else {
      cat.latency_ms.add(elapsed);
    }
  }
  add_node_load(at, msg, /*transit=*/false);
}

void MetricsCollector::on_drop(fault::DropCause cause,
                               const routing::Message& msg) {
  (void)msg;
  if (registry_ != nullptr) {
    series_.drops[static_cast<std::size_t>(cause)]->add();
    series_.drops_total->add();
  }
  if (!enabled_) {
    return;
  }
  ++drops_by_cause_[static_cast<std::size_t>(cause)];
}

void MetricsCollector::on_detour(NodeIndex around,
                                 const routing::Message& msg) {
  (void)around;
  (void)msg;
  if (registry_ != nullptr) {
    registry_->counter("failover.detours").add();
  }
  if (!enabled_) {
    return;
  }
  ++robustness_.report_detours;
}

void MetricsCollector::on_oracle_fallback(NodeIndex node) {
  (void)node;
  if (registry_ != nullptr) {
    registry_->counter("chord.oracle_fallbacks").add();
  }
  if (!enabled_) {
    return;
  }
  ++robustness_.oracle_fallbacks;
}

std::uint64_t MetricsCollector::total_drops() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t count : drops_by_cause_) {
    total += count;
  }
  return total;
}

std::uint64_t MetricsCollector::node_load(NodeIndex node,
                                          LoadComponent component) const {
  SDSI_CHECK(node < per_node_.size());
  return per_node_[node][static_cast<std::size_t>(component)];
}

std::uint64_t MetricsCollector::node_load_total(NodeIndex node) const {
  SDSI_CHECK(node < per_node_.size());
  std::uint64_t total = 0;
  for (const std::uint64_t count : per_node_[node]) {
    total += count;
  }
  return total;
}

}  // namespace sdsi::core
