#include "core/hot_arc.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sdsi::core {

HotArcDetector::HotArcDetector(HotArcConfig config, std::size_t num_nodes)
    : config_(config), hot_(num_nodes, false), streak_(num_nodes, 0) {
  SDSI_CHECK(config_.enter_ratio > config_.exit_ratio &&
             "hysteresis requires a dead band between enter and exit");
  SDSI_CHECK(config_.enter_windows >= 1 && config_.exit_windows >= 1);
}

HotArcDetector::Transitions HotArcDetector::observe(
    const std::vector<std::uint64_t>& work) {
  SDSI_CHECK(work.size() == hot_.size());
  Transitions out;
  if (work.empty()) {
    return out;
  }

  scratch_ = work;
  const auto mid = static_cast<std::ptrdiff_t>(scratch_.size() / 2);
  std::nth_element(scratch_.begin(), scratch_.begin() + mid, scratch_.end());
  const std::uint64_t median = scratch_[static_cast<std::size_t>(mid)];
  if (median < config_.min_median_work) {
    // Idle window: no evidence either way; streaks freeze rather than decay
    // so a briefly idle ring does not forget an in-progress detection.
    return out;
  }

  const double median_d = static_cast<double>(median);
  for (std::size_t i = 0; i < work.size(); ++i) {
    const double w = static_cast<double>(work[i]);
    if (!hot_[i]) {
      if (w > config_.enter_ratio * median_d) {
        if (++streak_[i] >= config_.enter_windows) {
          hot_[i] = true;
          streak_[i] = 0;
          out.split.push_back(i);
        }
      } else {
        streak_[i] = 0;
      }
    } else {
      if (w < config_.exit_ratio * median_d) {
        if (++streak_[i] >= config_.exit_windows) {
          hot_[i] = false;
          streak_[i] = 0;
          out.merge.push_back(i);
        }
      } else {
        streak_[i] = 0;
      }
    }
  }
  return out;
}

}  // namespace sdsi::core
