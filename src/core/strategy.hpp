// Pluggable indexing strategies: the summary / routing-key / index triple
// behind one factory, so the middleware is a testbed for content-based
// stream indexing rather than one paper's design point.
//
// A strategy bundles the three axes the paper fixes in Sections III-IV:
//
//  - Summarizer     — per-stream incremental summary (raw samples in,
//                     FeatureVector out). The paper's instance is first-k
//                     sliding-window DFT coefficients (streams/summarizer.hpp).
//  - ContentKeyMap  — feature space -> identifier circle. The paper's
//                     instance is the Eq. 6 coefficient-interval map
//                     (core/mapper.hpp).
//  - IndexStore     — node-local storage + matching. All built-in strategies
//                     share core::IndexStore (interval-pruned MBRs): its
//                     pruning is a pure first-coordinate distance lower
//                     bound, valid for any feature embedding. A strategy
//                     with its own store (e.g. BSTree) would plug in here.
//
// Contract (docs/STRATEGIES.md is the full reference):
//  - Determinism: a summarizer's output is a pure function of the samples
//    pushed; a key map is a pure function of its inputs and construction
//    seed. No clocks, no global RNG draws.
//  - Lower-bounding: features of similar windows must be close (the store's
//    MBR containment test and first-coordinate pruning must never produce a
//    false dismissal *in feature space*), so the recall oracle's brute-force
//    shadow stays a meaningful ceiling for every strategy.
//  - Idempotent stores: routing may redeliver; the (stream, batch_seq) dedup
//    in IndexStore must keep redelivery invisible.
//  - Coordinates live in [-1, 1] (the Eq. 6 clamp domain), and the FIRST
//    coordinate is the routing coordinate (Mbr::routing_low/high).
//
// Built-in strategies:
//  - "dft" — the paper's pipeline, bit-identical to the pre-strategy code
//            (pinned by tests/test_strategy_equivalence.cpp).
//  - "ecm" — ECM-sketch summarizer (Papapetrou et al.): Count-Min of
//            exponential histograms over the sliding window; features are
//            the unit-L2 sqrt-frequency (Hellinger) embedding of the
//            window's value histogram. Routing reuses the Eq. 6 map.
//  - "lsh" — distributed LSH routing (Bahmani et al.): DFT features, but
//            the content-to-key map hashes them with signed random
//            projections so each signature bucket owns one ring arc;
//            queries multi-probe low-margin neighbor buckets. Recall < 1 by
//            design; the oracle quantifies the loss.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/ring_math.hpp"
#include "common/types.hpp"
#include "dsp/features.hpp"
#include "dsp/mbr.hpp"

namespace sdsi::core {

enum class StrategyKind : std::uint8_t {
  kDft = 0,  // first-k DFT + Eq. 6 interval map (the paper; default)
  kEcm = 1,  // ECM-sketch histogram summarizer + Eq. 6 interval map
  kLsh = 2,  // DFT summarizer + LSH bucket content-to-key map
};

/// Stable CLI / metrics.json spelling ("dft" / "ecm" / "lsh").
const char* strategy_name(StrategyKind kind) noexcept;

/// Inverse of strategy_name; nullopt on unknown spellings.
std::optional<StrategyKind> parse_strategy(std::string_view name) noexcept;

/// ECM-sketch strategy knobs (streams/ecm_sketch.hpp holds the sketch).
struct EcmOptions {
  /// Histogram bins = feature dimensions (packed two per complex coeff,
  /// so `bins` must be even). Routing coordinate = central bin's mass.
  std::size_t bins = 8;
  /// Count-Min geometry: `width` cells per row, `depth` rows (estimate =
  /// min over rows). With width >= bins collisions are rare and the
  /// exponential-histogram window error dominates.
  std::size_t width = 32;
  std::size_t depth = 3;
  /// Exponential-histogram merge threshold k: per-cell sliding-window
  /// counts carry relative error <= 1/(2k) (Datar et al. bound).
  std::size_t eh_k = 8;
  /// Quantization: samples are z-scaled by running (Welford) stream stats
  /// and binned uniformly over [-z_span, +z_span].
  double z_span = 3.0;
  std::uint64_t seed = 0xec5eedULL;
};

/// LSH-routing strategy knobs.
struct LshOptions {
  /// Signature bits (hyperplanes); the ring splits into 2^planes bucket
  /// arcs. Must not exceed the id-space bit width.
  std::size_t planes = 6;
  /// Multi-probe cap: primary bucket + at most (max_probes - 1) single-bit
  /// flips of low-margin planes.
  std::size_t max_probes = 8;
  std::uint64_t seed = 0x15b45eedULL;
};

struct StrategyOptions {
  StrategyKind kind = StrategyKind::kDft;
  EcmOptions ecm;
  LshOptions lsh;
};

/// Per-stream incremental summary. Mirrors streams::StreamSummarizer's
/// surface (which the dft strategy adapts verbatim); one instance is owned
/// by exactly one stream and never shared across threads.
class Summarizer {
 public:
  virtual ~Summarizer() = default;

  virtual void push(Sample value) = 0;
  /// Behaviorally identical to pushing one by one.
  virtual void push_span(std::span<const Sample> values) = 0;

  /// True once a full window has been observed.
  virtual bool ready() const noexcept = 0;
  /// Samples still needed before ready() flips (0 once ready). While this
  /// exceeds 1 the next sample produces no features, so bulk ingestion may
  /// push that cold prefix through push_span without consulting features.
  virtual std::size_t samples_until_ready() const noexcept = 0;
  virtual std::uint64_t samples_seen() const noexcept = 0;

  /// Current feature vector into `out` (reusing capacity); false until
  /// ready() or when the window is degenerate. `out` unchanged on false.
  virtual bool features_into(dsp::FeatureVector& out) const = 0;
  /// Allocating convenience used off the hot path.
  std::optional<dsp::FeatureVector> features() const;

  /// Approximate raw window (oldest first, raw data scale) for local
  /// inner-product answering (paper Eq. 7); false when not ready. The dft
  /// strategy reconstructs from the synopsis and undoes the normalization;
  /// ecm copies its exact raw ring.
  virtual bool approx_window(std::vector<Sample>& out) const = 0;
};

/// Feature space -> identifier circle. Pure and deterministic: equal inputs
/// give equal keys on every node (the property content-based routing needs).
class ContentKeyMap {
 public:
  virtual ~ContentKeyMap() = default;

  virtual Key key_for(const dsp::FeatureVector& features) const = 0;

  /// Primary key range of a published MBR / posed query. The primary range
  /// is the one the reliability layers track (acks, refresh, replication
  /// arc checks) and the one whose midpoint hosts the query's aggregator.
  virtual std::pair<Key, Key> mbr_range(const dsp::Mbr& mbr) const = 0;
  virtual std::pair<Key, Key> query_range(const dsp::FeatureVector& features,
                                          double radius) const = 0;

  /// Full probe set, primary first. Single-range maps (dft/ecm) emit
  /// exactly the primary; lsh appends neighbor-bucket probes. `out` is
  /// cleared first.
  virtual void mbr_ranges(const dsp::Mbr& mbr,
                          std::vector<std::pair<Key, Key>>& out) const;
  virtual void query_ranges(const dsp::FeatureVector& features, double radius,
                            std::vector<std::pair<Key, Key>>& out) const;
};

/// One strategy = a Summarizer factory + a ContentKeyMap + the batch query
/// feature extractor. Construction is cheap and deterministic; the object
/// is immutable after construction and safe to share const across threads.
class IndexingStrategy {
 public:
  static std::unique_ptr<IndexingStrategy> make(const StrategyOptions& options,
                                                dsp::FeatureConfig features,
                                                common::IdSpace space);

  virtual ~IndexingStrategy() = default;

  StrategyKind kind() const noexcept { return kind_; }
  const char* name() const noexcept { return strategy_name(kind_); }
  const dsp::FeatureConfig& features() const noexcept { return features_; }

  /// Fresh summarizer for one local stream.
  virtual std::unique_ptr<Summarizer> make_summarizer() const = 0;

  /// The shared, stateless key map.
  virtual const ContentKeyMap& key_map() const = 0;

  /// Features of a complete raw window (query construction: the batch
  /// equivalent of what make_summarizer() computes incrementally).
  virtual dsp::FeatureVector features_from_window(
      std::span<const Sample> window) const = 0;

 protected:
  IndexingStrategy(StrategyKind kind, dsp::FeatureConfig features)
      : kind_(kind), features_(std::move(features)) {}

 private:
  StrategyKind kind_;
  dsp::FeatureConfig features_;
};

}  // namespace sdsi::core
