#include "core/mapper.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.hpp"
#include "common/sha1.hpp"

namespace sdsi::core {

SummaryMapper::SummaryMapper(common::IdSpace space) : space_(space) {
  // 2^m must be exactly representable in double for Eq. 6 to be monotone.
  SDSI_CHECK(space.bits() <= 52);
}

Key SummaryMapper::key_for_coordinate(double x) const noexcept {
  const double clamped = std::clamp(x, -1.0, 1.0);
  const double scaled =
      (clamped + 1.0) / 2.0 * static_cast<double>(space_.size());
  const auto key = static_cast<Key>(scaled);
  return std::min<Key>(key, space_.size() - 1);
}

std::pair<Key, Key> SummaryMapper::key_range(double lo, double hi) const noexcept {
  SDSI_DCHECK(lo <= hi);
  return {key_for_coordinate(lo), key_for_coordinate(hi)};
}

Key SummaryMapper::key_for_stream(StreamId stream) const noexcept {
  return space_.wrap(
      common::sha1_prefix64("stream:" + std::to_string(stream)));
}

}  // namespace sdsi::core
