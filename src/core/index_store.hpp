// Per-data-center index storage (paper Sec IV, Table I lifespans).
//
// Each node stores (a) the MBRs routed to it by content, and (b) the
// similarity-query subscriptions replicated onto it because its arc
// intersects the query's key range. Both carry lifespans: "every MBR or
// query is stored at nodes only for a certain life span after which it is
// removed, to prevent cluttering of storage space and to eliminate query
// responses that contain stale information."
//
// Matching engine (key-interval pruning). A stored MBR projects onto the
// routing dimension as the interval [low_1re, high_1re] — exactly the Eq. 6
// key range it was replicated over. A similarity ball projects onto
// [x1 - r, x1 + r]. If those two intervals do not overlap, the first-dim gap
// alone already exceeds r, so min_distance > r and the full MBR bound could
// never admit the candidate. The store therefore keeps an interval index
// sorted by `low` and evaluates min_distance only against MBRs whose
// first-coefficient interval overlaps the query interval — the surviving
// candidates still get the full multi-dimensional MBR lower bound, so the
// Sec IV-E no-false-dismissal guarantee is untouched.
//
// Expiry is incremental ("expiry lanes"): a min-expiry heap per container
// pops lapsed entries in O(log n) each instead of erase_if-scanning both
// containers every NPER tick. MBR slots are deleted lazily (an entry is dead
// iff expires <= the latest expiry horizon) and the slab compacts once dead
// slots dominate.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "common/dense_map.hpp"
#include "core/query.hpp"

namespace sdsi::core {

class WorkerPool;

class IndexStore {
 public:
  struct StoredMbr {
    StreamId stream = 0;
    NodeIndex source = kInvalidNode;
    dsp::Mbr mbr;
    std::uint64_t batch_seq = 0;
    sim::SimTime stored_at;
    sim::SimTime expires;
  };

  struct Subscription {
    std::shared_ptr<const SimilarityQuery> query;
    Key middle_key = 0;
    sim::SimTime expires;
    /// Streams already reported by THIS node for this query; reports are
    /// deduplicated per node, the aggregator dedups across nodes.
    DenseSet<StreamId> reported;
  };

  /// Stores one MBR. Returns false without storing when the entry is already
  /// past the expiry horizon, or when a live entry with the same
  /// (stream, batch_seq) is present — duplicate deliveries from ack-driven
  /// retransmission or soft-state refresh are idempotent, so self-healing
  /// can never inflate match counts.
  bool add_mbr(StoredMbr entry);

  /// Inserts or refreshes a subscription (range re-replication of the same
  /// query id keeps the original state).
  void add_subscription(std::shared_ptr<const SimilarityQuery> query,
                        Key middle_key, sim::SimTime expires);

  /// Advances the expiry horizon to `now`, dropping every MBR and
  /// subscription whose lifespan passed. Incremental: O(log n) per lapsed
  /// entry, O(1) when nothing expired.
  void expire(sim::SimTime now);

  /// One matching pass (Eq. 8 + MBR lower bound): returns the NEW
  /// (query, stream) candidate pairs detected at `now`, recording them so
  /// they are never reported twice by this node. Runs expire(now) first, so
  /// callers need no separate sweep.
  ///
  /// With a WorkerPool the per-subscription candidate scans are sharded
  /// across its threads (each subscription is owned by exactly one task;
  /// the MBR slab and interval index are frozen for the duration of the
  /// pass) and the shard results are concatenated in the serial iteration
  /// order — the returned vector is byte-identical to the pool-less call.
  std::vector<SimilarityMatch> match(sim::SimTime now,
                                     WorkerPool* pool = nullptr);

  /// Reference oracle: the original O(subscriptions x MBRs) scan over the
  /// same state. Kept for the equivalence tests and the matching microbench;
  /// production ticks use match().
  std::vector<SimilarityMatch> match_brute_force(sim::SimTime now);

  std::size_t mbr_count() const noexcept { return alive_mbrs_; }
  std::size_t subscription_count() const noexcept {
    return subscriptions_.size();
  }

  /// Interval-index entries visited by the most recent match() pass — the
  /// pass's scan cost, used by the overload layer as the node's "index work".
  /// A sum over subscriptions, so the serial and pool-sharded passes report
  /// the identical number (hot-arc decisions stay thread-count-invariant).
  std::uint64_t last_match_work() const noexcept { return last_match_work_; }

  /// Snapshot of the live MBR entries (insertion order preserved).
  std::vector<StoredMbr> mbrs() const;

  const DenseMap<QueryId, Subscription>& subscriptions() const noexcept {
    return subscriptions_;
  }
  const Subscription* find_subscription(QueryId id) const;

  /// Whether a live entry with this (stream, batch_seq) identity is stored.
  /// Lazily-deleted slots count as absent (replication digests must never
  /// claim expired state).
  bool contains_mbr(StreamId stream, std::uint64_t batch_seq) const;

  /// The live entry with this identity, or nullptr. The pointer is
  /// invalidated by any mutating call.
  const StoredMbr* find_mbr(StreamId stream, std::uint64_t batch_seq) const;

 private:
  /// One entry of the interval index: the routing-dimension interval of
  /// mbrs_[pos], plus the stream id and expiry mirrored out of the slab so
  /// the candidate scan (interval overlap, liveness, dedup) runs entirely
  /// over this hot contiguous array; the cold 100+-byte slab entry is
  /// touched only for the final multi-dimensional min_distance bound.
  struct IntervalRef {
    double low = 0.0;
    double high = 0.0;
    std::uint32_t pos = 0;
    StreamId stream = 0;
    sim::SimTime expires;
  };

  struct MbrExpiry {
    sim::SimTime expires;
    std::uint32_t pos = 0;
    friend bool operator>(const MbrExpiry& a, const MbrExpiry& b) noexcept {
      return a.expires > b.expires;
    }
  };

  struct SubExpiry {
    sim::SimTime expires;
    QueryId id = 0;
    friend bool operator>(const SubExpiry& a, const SubExpiry& b) noexcept {
      return a.expires > b.expires;
    }
  };

  template <typename T>
  using MinHeap = std::priority_queue<T, std::vector<T>, std::greater<T>>;

  /// Identity of an MBR batch for duplicate suppression.
  struct MbrKey {
    StreamId stream = 0;
    std::uint64_t batch_seq = 0;
    bool operator==(const MbrKey&) const = default;
  };
  struct MbrKeyHash {
    std::size_t operator()(const MbrKey& k) const noexcept {
      std::uint64_t h = k.stream * 0x9E3779B97F4A7C15ull;
      h ^= k.batch_seq + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  bool dead(const StoredMbr& entry) const noexcept {
    return entry.expires <= horizon_;
  }

  /// One subscription's candidate scan (the shared body of the serial and
  /// sharded match paths). Appends fresh matches to `out` and records them
  /// in sub.reported. Reads only the frozen slab/index state; writes only
  /// `sub` and `out`, so concurrent calls on distinct subscriptions are
  /// race-free.
  void match_subscription(QueryId id, Subscription& sub, sim::SimTime now,
                          std::vector<SimilarityMatch>& out,
                          std::uint64_t& scanned) const;

  /// Folds slab entries added since the last merge into the sorted index.
  void merge_pending();

  /// Physically drops dead slab entries and rebuilds index + heap.
  void compact();

  // --- MBR side ---------------------------------------------------------
  std::vector<StoredMbr> mbrs_;      // slab: live entries + lazy tombstones
  std::vector<IntervalRef> sorted_;  // interval index, ascending by low
  std::size_t indexed_limit_ = 0;    // slab positions >= this are unindexed
  double max_extent_ = 0.0;  // widest routing interval in the index
  MinHeap<MbrExpiry> mbr_expiry_;
  // (stream, batch_seq) -> slab position; an entry whose slot is dead (lazy
  // tombstone) counts as absent. Rebuilt by compact().
  DenseMap<MbrKey, std::uint32_t, MbrKeyHash> by_key_;
  std::size_t alive_mbrs_ = 0;
  sim::SimTime horizon_;  // latest time passed to expire()

  // --- Subscription side ------------------------------------------------
  DenseMap<QueryId, Subscription> subscriptions_;
  MinHeap<SubExpiry> sub_expiry_;

  std::uint64_t last_match_work_ = 0;  // scan cost of the latest match()
};

}  // namespace sdsi::core
