// Per-data-center index storage (paper Sec IV, Table I lifespans).
//
// Each node stores (a) the MBRs routed to it by content, and (b) the
// similarity-query subscriptions replicated onto it because its arc
// intersects the query's key range. Both carry lifespans: "every MBR or
// query is stored at nodes only for a certain life span after which it is
// removed, to prevent cluttering of storage space and to eliminate query
// responses that contain stale information."
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/query.hpp"

namespace sdsi::core {

class IndexStore {
 public:
  struct StoredMbr {
    StreamId stream = 0;
    NodeIndex source = kInvalidNode;
    dsp::Mbr mbr;
    std::uint64_t batch_seq = 0;
    sim::SimTime stored_at;
    sim::SimTime expires;
  };

  struct Subscription {
    std::shared_ptr<const SimilarityQuery> query;
    Key middle_key = 0;
    sim::SimTime expires;
    /// Streams already reported by THIS node for this query; reports are
    /// deduplicated per node, the aggregator dedups across nodes.
    std::unordered_set<StreamId> reported;
  };

  void add_mbr(StoredMbr entry) { mbrs_.push_back(std::move(entry)); }

  /// Inserts or refreshes a subscription (range re-replication of the same
  /// query id keeps the original state).
  void add_subscription(std::shared_ptr<const SimilarityQuery> query,
                        Key middle_key, sim::SimTime expires);

  /// Drops every MBR and subscription whose lifespan passed.
  void expire(sim::SimTime now);

  /// One matching pass (Eq. 8 + MBR lower bound): returns the NEW
  /// (query, stream) candidate pairs detected at `now`, recording them so
  /// they are never reported twice by this node.
  std::vector<SimilarityMatch> match(sim::SimTime now);

  std::size_t mbr_count() const noexcept { return mbrs_.size(); }
  std::size_t subscription_count() const noexcept {
    return subscriptions_.size();
  }
  const std::vector<StoredMbr>& mbrs() const noexcept { return mbrs_; }
  const std::unordered_map<QueryId, Subscription>& subscriptions()
      const noexcept {
    return subscriptions_;
  }
  const Subscription* find_subscription(QueryId id) const;

 private:
  std::vector<StoredMbr> mbrs_;
  std::unordered_map<QueryId, Subscription> subscriptions_;
};

}  // namespace sdsi::core
