#include "core/robustness.hpp"

namespace sdsi::core {

void RecallOracle::on_publish(const MbrPayload& payload, sim::SimTime now) {
  shadow_.add_mbr(IndexStore::StoredMbr{payload.stream, payload.source,
                                        payload.mbr, payload.batch_seq, now,
                                        payload.expires});
}

void RecallOracle::on_subscribe(
    std::shared_ptr<const SimilarityQuery> query) {
  const sim::SimTime expires = query->issued_at + query->lifespan;
  // The middle key only matters for routing; the shadow store never routes.
  shadow_.add_subscription(std::move(query), /*middle_key=*/0, expires);
}

void RecallOracle::sample(sim::SimTime now) {
  for (const SimilarityMatch& match : shadow_.match_brute_force(now)) {
    pairs_.emplace(match.query, match.stream);
  }
}

}  // namespace sdsi::core
