// Hot-arc detection for overload survival (ROADMAP: adversarial skew).
//
// The paper's load-uniformity claim (Fig 6a/6b) holds only for friendly
// synthetic data: content routing maps summaries onto the ring by their DFT
// keys, so Zipf-correlated streams and subscriptions pile onto one narrow
// arc and melt its owner while the rest of the ring idles. The detector
// watches windowed per-node *work* (stores + match scans + aggregation
// pushes — the cost a split can actually move; delivered messages cannot be
// un-delivered) and flags nodes that run persistently hot relative to the
// ring median.
//
// Hysteresis: a node must exceed `enter_ratio x median` for
// `enter_windows` consecutive windows to split, and fall below
// `exit_ratio x median` (exit_ratio < enter_ratio) for `exit_windows`
// consecutive windows to merge back. The dead band between the two ratios
// plus the consecutive-window requirement prevents split/merge flapping on
// workloads that oscillate around the threshold (unit-tested in
// tests/test_hot_arc.cpp).
//
// Determinism: decisions are a pure function of the windowed work counters,
// which the middleware accumulates on its serial dispatch path — so the
// same seed yields the same split schedule at any thread count, keeping
// metrics.json byte-comparable.
#pragma once

#include <cstdint>
#include <vector>

namespace sdsi::core {

struct HotArcConfig {
  /// Split when node work > enter_ratio x ring median...
  double enter_ratio = 4.0;
  /// ...for this many consecutive detector windows.
  int enter_windows = 2;
  /// Merge when node work < exit_ratio x ring median...
  double exit_ratio = 2.0;
  /// ...for this many consecutive detector windows.
  int exit_windows = 3;
  /// Ignore windows whose ring median is below this floor (an idle ring has
  /// no meaningful "hot" node; ratios against ~0 medians are noise).
  std::uint64_t min_median_work = 8;
};

/// Per-ring hot-arc state machine. Feed it one vector of windowed per-node
/// work counters per detector tick; it reports which nodes crossed into or
/// out of the hot state this tick.
class HotArcDetector {
 public:
  HotArcDetector() = default;
  HotArcDetector(HotArcConfig config, std::size_t num_nodes);

  struct Transitions {
    std::vector<std::size_t> split;  // newly hot (ascending node index)
    std::vector<std::size_t> merge;  // newly cool (ascending node index)
  };

  /// One detector window: `work[i]` is node i's work count since the last
  /// call. Returns the state transitions this window produced. Nodes already
  /// hot stay hot until the exit condition holds; nodes already cool stay
  /// cool until the enter condition holds.
  Transitions observe(const std::vector<std::uint64_t>& work);

  /// Grows the state to cover nodes that joined after construction (new
  /// nodes start cool with no streak); never shrinks.
  void ensure_nodes(std::size_t count) {
    if (count > hot_.size()) {
      hot_.resize(count, false);
      streak_.resize(count, 0);
    }
  }

  bool is_hot(std::size_t node) const { return hot_[node]; }
  std::size_t hot_count() const noexcept {
    std::size_t n = 0;
    for (const bool h : hot_) {
      n += h ? 1 : 0;
    }
    return n;
  }

  const HotArcConfig& config() const noexcept { return config_; }

 private:
  HotArcConfig config_;
  std::vector<bool> hot_;
  std::vector<int> streak_;  // consecutive windows satisfying the pending
                             // transition's condition
  std::vector<std::uint64_t> scratch_;  // median workspace
};

}  // namespace sdsi::core
