#include "core/obs_export.hpp"

#include <cstdint>
#include <fstream>

#include "core/metrics.hpp"
#include "core/report_render.hpp"

namespace sdsi::core {
namespace {

const char* substrate_name(SubstrateKind kind) {
  switch (kind) {
    case SubstrateKind::kChord:
      return "chord";
    case SubstrateKind::kPrefixRing:
      return "prefix";
    case SubstrateKind::kStaticRing:
      return "ideal";
  }
  SDSI_CHECK(false && "unknown SubstrateKind");
  return "";
}

const char* multicast_name(routing::MulticastStrategy strategy) {
  switch (strategy) {
    case routing::MulticastStrategy::kSequential:
      return "seq";
    case routing::MulticastStrategy::kBidirectional:
      return "bidir";
  }
  SDSI_CHECK(false && "unknown MulticastStrategy");
  return "";
}

obs::Json points_to_json(const obs::TimeSeries& series) {
  obs::Json points = obs::Json::array();
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& point = series.at(i);
    obs::Json pair = obs::Json::array();
    pair.push_back(obs::Json(static_cast<std::int64_t>(point.window)));
    pair.push_back(obs::Json(point.value));
    points.push_back(std::move(pair));
  }
  return points;
}

obs::Json category_to_json(const CategoryCounters& cat) {
  obs::Json j = obs::Json::object();
  j["originated"] = obs::Json(cat.originated);
  j["range_internal"] = obs::Json(cat.range_internal);
  j["transit"] = obs::Json(cat.transit);
  j["delivered"] = obs::Json(cat.delivered);
  j["hops_routed_mean"] = obs::Json(cat.hops_routed.mean());
  j["hops_internal_mean"] = obs::Json(cat.hops_internal.mean());
  j["latency_ms"] = histogram_to_json(cat.latency_ms);
  j["range_latency_ms"] = histogram_to_json(cat.range_latency_ms);
  return j;
}

obs::Json timeseries_to_json(const obs::MetricsRegistry& registry) {
  obs::Json j = obs::Json::object();
  j["window_ms"] = obs::Json(registry.window().as_millis());
  j["ring_capacity"] =
      obs::Json(static_cast<std::uint64_t>(registry.ring_capacity()));
  obs::Json series = obs::Json::array();
  for (const auto& [name, counter] : registry.counters()) {
    obs::Json entry = obs::Json::object();
    entry["name"] = obs::Json(name);
    entry["kind"] = obs::Json("counter");
    entry["total"] = obs::Json(counter->total());
    entry["points"] = points_to_json(counter->series());
    entry["evicted"] = obs::Json(counter->series().evicted());
    series.push_back(std::move(entry));
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    obs::Json entry = obs::Json::object();
    entry["name"] = obs::Json(name);
    entry["kind"] = obs::Json("gauge");
    entry["value"] = obs::Json(gauge->value());
    entry["points"] = points_to_json(gauge->series());
    entry["evicted"] = obs::Json(gauge->series().evicted());
    series.push_back(std::move(entry));
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    obs::Json entry = obs::Json::object();
    entry["name"] = obs::Json(name);
    entry["kind"] = obs::Json("histogram");
    entry["histogram"] = histogram_to_json(histogram->histogram());
    entry["count_points"] = points_to_json(histogram->count_series());
    entry["sum_points"] = points_to_json(histogram->sum_series());
    entry["evicted"] = obs::Json(histogram->count_series().evicted());
    series.push_back(std::move(entry));
  }
  j["series"] = std::move(series);
  return j;
}

}  // namespace

obs::Json histogram_to_json(const obs::LogHistogram& histogram) {
  obs::Json j = obs::Json::object();
  j["count"] = obs::Json(histogram.count());
  j["sum"] = obs::Json(histogram.sum());
  j["min"] = obs::Json(histogram.min());
  j["max"] = obs::Json(histogram.max());
  j["mean"] = obs::Json(histogram.mean());
  j["p50"] = obs::Json(histogram.p50());
  j["p90"] = obs::Json(histogram.p90());
  j["p99"] = obs::Json(histogram.p99());
  obs::Json buckets = obs::Json::array();  // non-empty buckets only
  for (std::size_t i = 0; i < histogram.bucket_count(); ++i) {
    if (histogram.bucket(i) == 0) {
      continue;
    }
    obs::Json bucket = obs::Json::array();
    bucket.push_back(obs::Json(histogram.bucket_low(i)));
    bucket.push_back(obs::Json(histogram.bucket_high(i)));
    bucket.push_back(obs::Json(histogram.bucket(i)));
    buckets.push_back(std::move(bucket));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

obs::Json metrics_to_json(const Experiment& experiment) {
  const ExperimentConfig& config = experiment.config();
  const MetricsCollector& metrics = experiment.metrics();

  obs::Json doc = obs::Json::object();
  // v2: ninth load component ("replication"), replication/failover
  // robustness fields, and the replication category.
  // v3 (additive): load.per_node_work + load.imbalance, overload-survival
  // robustness counters, drops.shed_overload / drops.backpressure, and the
  // run.overload flag.
  // v4 (additive): run.strategy names the indexing strategy
  // (core/strategy.hpp); everything else is unchanged for the default.
  doc["schema_version"] = obs::Json(4);
  doc["kind"] = obs::Json("sdsi.metrics");

  obs::Json run = obs::Json::object();
  run["strategy"] = obs::Json(strategy_name(config.strategy.kind));
  run["nodes"] = obs::Json(static_cast<std::uint64_t>(config.num_nodes));
  run["id_bits"] = obs::Json(static_cast<std::uint64_t>(config.id_bits));
  run["seed"] = obs::Json(config.seed);
  run["substrate"] = obs::Json(substrate_name(config.substrate));
  run["multicast"] = obs::Json(multicast_name(config.multicast));
  run["warmup_s"] = obs::Json(config.warmup.as_seconds());
  run["measure_s"] = obs::Json(config.measure.as_seconds());
  run["drain_s"] = obs::Json(config.drain.as_seconds());
  run["mbr_acks"] = obs::Json(config.mbr_acks);
  run["mbr_refresh_s"] = obs::Json(config.mbr_refresh_period.as_seconds());
  run["replication_factor"] =
      obs::Json(static_cast<std::uint64_t>(config.replication_factor));
  run["anti_entropy_s"] = obs::Json(config.anti_entropy_period.as_seconds());
  run["overload"] = obs::Json(config.overload.has_value());
  doc["run"] = std::move(run);

  const LoadReport load_report = experiment.load_report();
  obs::Json load = obs::Json::object();
  obs::Json per_component = obs::Json::object();
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(LoadComponent::kCount); ++c) {
    per_component[load_component_slug(static_cast<LoadComponent>(c))] =
        obs::Json(load_report.per_component[c]);
  }
  load["per_component"] = std::move(per_component);
  load["total"] = obs::Json(load_report.total);
  obs::Json per_node = obs::Json::array();
  for (const double rate : load_report.per_node_total) {
    per_node.push_back(obs::Json(rate));
  }
  load["per_node_total"] = std::move(per_node);
  obs::Json per_node_work = obs::Json::array();
  for (NodeIndex node = 0; node < config.num_nodes; ++node) {
    per_node_work.push_back(obs::Json(metrics.node_work_total(node)));
  }
  load["per_node_work"] = std::move(per_node_work);
  doc["load"] = std::move(load);

  const OverheadReport overhead_report = experiment.overhead_report();
  obs::Json overhead = obs::Json::object();
  overhead["mbr_internal"] = obs::Json(overhead_report.mbr_internal);
  overhead["mbr_transit"] = obs::Json(overhead_report.mbr_transit);
  overhead["query_internal"] = obs::Json(overhead_report.query_internal);
  overhead["query_transit"] = obs::Json(overhead_report.query_transit);
  overhead["neighbor_exchange"] = obs::Json(overhead_report.neighbor_exchange);
  overhead["response_transit"] = obs::Json(overhead_report.response_transit);
  doc["overhead"] = std::move(overhead);

  const HopsReport hops_report = experiment.hops_report();
  obs::Json hops = obs::Json::object();
  hops["mbr"] = obs::Json(hops_report.mbr);
  hops["mbr_internal"] = obs::Json(hops_report.mbr_internal);
  hops["query"] = obs::Json(hops_report.query);
  hops["query_internal"] = obs::Json(hops_report.query_internal);
  hops["response"] = obs::Json(hops_report.response);
  doc["hops"] = std::move(hops);

  obs::Json categories = obs::Json::object();
  categories["mbr"] = category_to_json(metrics.mbr());
  categories["query"] = category_to_json(metrics.query());
  categories["response"] = category_to_json(metrics.response());
  categories["neighbor"] = category_to_json(metrics.neighbor());
  categories["location"] = category_to_json(metrics.location());
  categories["control"] = category_to_json(metrics.control());
  categories["replication"] = category_to_json(metrics.replication());
  doc["categories"] = std::move(categories);

  obs::Json drops = obs::Json::object();
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(fault::DropCause::kCount); ++c) {
    const auto cause = static_cast<fault::DropCause>(c);
    drops[fault::drop_cause_slug(cause)] = obs::Json(metrics.drops(cause));
  }
  drops["total"] = obs::Json(metrics.total_drops());
  doc["drops"] = std::move(drops);

  const QualityReport quality_report = experiment.quality_report();
  obs::Json quality = obs::Json::object();
  quality["queries_posed"] = obs::Json(quality_report.queries_posed);
  quality["responses_received"] =
      obs::Json(quality_report.responses_received);
  quality["matches_reported"] = obs::Json(quality_report.matches_reported);
  quality["mean_first_response_ms"] =
      obs::Json(quality_report.mean_first_response_ms);
  doc["quality"] = std::move(quality);

  const RobustnessReport robustness_report = experiment.robustness_report();
  obs::Json robustness = obs::Json::object();
  robustness["recall"] = obs::Json(robustness_report.recall);
  robustness["oracle_pairs"] = obs::Json(robustness_report.oracle_pairs);
  robustness["delivered_pairs"] =
      obs::Json(robustness_report.delivered_pairs);
  robustness["duplicate_delivery_rate"] =
      obs::Json(robustness_report.duplicate_delivery_rate);
  robustness["duplicate_stores"] =
      obs::Json(robustness_report.duplicate_stores);
  robustness["mbr_retries"] = obs::Json(robustness_report.mbr_retries);
  robustness["mbr_retry_exhausted"] =
      obs::Json(robustness_report.mbr_retry_exhausted);
  robustness["mbr_refreshes"] = obs::Json(robustness_report.mbr_refreshes);
  robustness["mbr_acks"] = obs::Json(robustness_report.mbr_acks);
  robustness["response_retries"] =
      obs::Json(robustness_report.response_retries);
  robustness["location_retries"] =
      obs::Json(robustness_report.location_retries);
  robustness["heals"] = obs::Json(robustness_report.heals);
  robustness["heal_latency_ms"] =
      histogram_to_json(metrics.robustness().heal_latency_ms);
  robustness["crashes"] = obs::Json(robustness_report.crashes);
  robustness["recoveries"] = obs::Json(robustness_report.recoveries);
  robustness["replica_puts"] = obs::Json(robustness_report.replica_puts);
  robustness["replica_repairs"] =
      obs::Json(robustness_report.replica_repairs);
  robustness["handoff_entries"] =
      obs::Json(robustness_report.handoff_entries);
  robustness["handoff_bytes"] = obs::Json(robustness_report.handoff_bytes);
  robustness["aggregator_failovers"] =
      obs::Json(robustness_report.aggregator_failovers);
  robustness["report_detours"] = obs::Json(robustness_report.report_detours);
  robustness["oracle_fallbacks"] =
      obs::Json(robustness_report.oracle_fallbacks);
  robustness["failover_latency_ms"] =
      histogram_to_json(metrics.robustness().failover_latency_ms);
  robustness["hot_arc_splits"] = obs::Json(robustness_report.hot_arc_splits);
  robustness["hot_arc_merges"] = obs::Json(robustness_report.hot_arc_merges);
  robustness["split_diverted_stores"] =
      obs::Json(robustness_report.split_diverted_stores);
  robustness["shed_mbrs"] = obs::Json(robustness_report.shed_mbrs);
  robustness["backpressure_deferrals"] =
      obs::Json(robustness_report.backpressure_deferrals);
  robustness["backpressure_drops"] =
      obs::Json(robustness_report.backpressure_drops);
  obs::Json imbalance = obs::Json::object();
  imbalance["message_p99_over_median"] =
      obs::Json(robustness_report.message_load_p99_over_median);
  imbalance["work_p99_over_median"] =
      obs::Json(robustness_report.work_p99_over_median);
  robustness["imbalance"] = std::move(imbalance);
  doc["robustness"] = std::move(robustness);

  if (experiment.registry() != nullptr) {
    doc["timeseries"] = timeseries_to_json(*experiment.registry());
  }
  return doc;
}

bool write_metrics_json(const Experiment& experiment,
                        const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << metrics_to_json(experiment).dump(2) << "\n";
  return static_cast<bool>(out);
}

}  // namespace sdsi::core
