#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>

namespace sdsi::core {

namespace {

StreamId stream_id_for_node(NodeIndex node) { return 1000 + node; }

}  // namespace

Experiment::Experiment(ExperimentConfig config)
    : config_(config),
      rng_factory_(config.seed),
      query_rng_(rng_factory_.make("query-arrivals")),
      query_walk_rng_(rng_factory_.make("query-patterns")) {
  SDSI_CHECK(config_.num_nodes >= 1);
}

Experiment::~Experiment() = default;

void Experiment::build() {
  const common::IdSpace space(config_.id_bits);
  const std::vector<Key> ids =
      routing::hash_node_ids(config_.num_nodes, space, config_.seed);

  switch (config_.substrate) {
    case SubstrateKind::kChord: {
      chord::ChordConfig chord_config;
      chord_config.id_bits = config_.id_bits;
      chord_config.lookup_style = config_.chord_lookup;
      auto network = std::make_unique<chord::ChordNetwork>(sim_, chord_config);
      network->bootstrap(ids);
      routing_ = std::move(network);
      break;
    }
    case SubstrateKind::kPrefixRing: {
      routing::PrefixRingConfig prefix_config;
      prefix_config.id_bits = config_.id_bits;
      auto network =
          std::make_unique<routing::PrefixRing>(sim_, prefix_config);
      network->bootstrap(ids);
      routing_ = std::move(network);
      break;
    }
    case SubstrateKind::kStaticRing:
      routing_ = std::make_unique<routing::StaticRing>(sim_, space, ids);
      break;
  }

  if (config_.message_loss > 0.0) {
    routing_->set_message_loss(config_.message_loss,
                               rng_factory_.make("message-loss"));
  }

  MiddlewareConfig middleware;
  middleware.features = config_.features;
  middleware.batching = config_.batching;
  middleware.multicast = config_.multicast;
  middleware.mbr_lifespan = config_.workload.mbr_lifespan;
  middleware.notify_period = config_.workload.notify_period;
  middleware.adaptive_precision = config_.adaptive_precision;
  system_ = std::make_unique<MiddlewareSystem>(*routing_, middleware);
  system_->metrics().set_enabled(false);
}

std::unique_ptr<streams::StreamGenerator> Experiment::make_generator(
    NodeIndex node) {
  switch (config_.stream_family) {
    case StreamFamily::kRandomWalk:
      return std::make_unique<streams::RandomWalkGenerator>(
          rng_factory_.make("stream-walk", node));
    case StreamFamily::kStockMarket: {
      // One shared market so tickers stay cross-correlated; built lazily on
      // the first node. Tickers advance the market in lockstep: all stock
      // streams share one period (closes arrive together), so ticker 0's
      // pull steps the whole market (see StockTickerStream).
      if (market_ == nullptr) {
        streams::StockMarketModel::Params params;
        params.num_tickers = config_.num_nodes;
        market_ = std::make_shared<streams::StockMarketModel>(
            rng_factory_.make("stock-market"), params);
      }
      return std::make_unique<streams::StockTickerStream>(market_, node);
    }
    case StreamFamily::kHostLoad:
      return std::make_unique<streams::HostLoadGenerator>(
          rng_factory_.make("stream-load", node));
  }
  SDSI_CHECK(false);
}

void Experiment::schedule_streams() {
  // "Each node is a source of exactly one stream", simulated as a periodic
  // process with per-stream period uniform in [PMIN, PMAX]. The stock
  // family keeps one common period so the shared market advances in
  // lockstep (daily closes arrive together at every data center).
  generators_.reserve(config_.num_nodes);
  common::Pcg32 period_rng = rng_factory_.make("stream-periods");
  const bool lockstep = config_.stream_family == StreamFamily::kStockMarket;
  const auto common_period = sim::Duration::micros(
      (config_.workload.stream_period_min.count_micros() +
       config_.workload.stream_period_max.count_micros()) /
      2);
  for (NodeIndex node = 0; node < config_.num_nodes; ++node) {
    const StreamId sid = stream_id_for_node(node);
    system_->register_stream(node, sid);
    generators_.push_back(make_generator(node));
    const auto period =
        lockstep ? common_period
                 : sim::Duration::micros(period_rng.uniform_int(
                       config_.workload.stream_period_min.count_micros(),
                       config_.workload.stream_period_max.count_micros()));
    const auto offset =
        lockstep ? sim::Duration()
                 : sim::Duration::micros(
                       period_rng.uniform_int(0, period.count_micros()));
    streams::StreamGenerator* generator = generators_.back().get();
    sim_.schedule_periodic(sim_.now() + offset + period, period,
                           [this, node, sid, generator] {
                             system_->post_stream_value(node, sid,
                                                        generator->next());
                           });
  }
}

dsp::FeatureVector Experiment::random_query_features() {
  // Query patterns are drawn from the same family as the data, so query
  // keys follow the data key distribution.
  std::vector<Sample> window(config_.features.window_size);
  switch (config_.stream_family) {
    case StreamFamily::kRandomWalk: {
      streams::RandomWalkGenerator walk(query_walk_rng_,
                                        query_walk_rng_.uniform(-10.0, 10.0));
      for (Sample& x : window) {
        x = walk.next();
      }
      break;
    }
    case StreamFamily::kStockMarket: {
      // A GBM price path with market-typical volatility.
      double price = 100.0;
      for (Sample& x : window) {
        price *= std::exp(0.0002 + 0.012 * query_walk_rng_.normal());
        x = price;
      }
      break;
    }
    case StreamFamily::kHostLoad: {
      streams::HostLoadGenerator load(query_walk_rng_);
      for (Sample& x : window) {
        x = load.next();
      }
      break;
    }
  }
  // Advance the shared rng so consecutive queries differ.
  query_walk_rng_ = common::Pcg32(query_walk_rng_.next64(),
                                  query_walk_rng_.next64());
  return dsp::extract_features(window, config_.features);
}

void Experiment::schedule_queries() {
  // Poisson arrivals at QRATE; every query is issued by a random node
  // ("queries are generated synthetically using a uniform distribution").
  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [this, arrival] {
    const NodeIndex client = static_cast<NodeIndex>(
        query_rng_.bounded(static_cast<std::uint32_t>(config_.num_nodes)));
    const auto lifespan = sim::Duration::micros(query_rng_.uniform_int(
        config_.workload.query_lifespan_min.count_micros(),
        config_.workload.query_lifespan_max.count_micros()));
    system_->subscribe_similarity(client, random_query_features(),
                                  config_.workload.query_radius, lifespan);
    ++queries_posed_;
    const double gap =
        query_rng_.exponential(config_.workload.query_rate_per_sec);
    sim_.schedule_after(sim::Duration::seconds(gap), [arrival] {
      (*arrival)();
    });
  };
  const double first_gap =
      query_rng_.exponential(config_.workload.query_rate_per_sec);
  sim_.schedule_after(sim::Duration::seconds(first_gap),
                      [arrival] { (*arrival)(); });
}

void Experiment::run() {
  SDSI_CHECK(!ran_);
  ran_ = true;
  build();
  schedule_streams();
  schedule_queries();
  system_->start();

  sim_.run_until(sim::SimTime::zero() + config_.warmup);
  system_->metrics().reset();
  system_->metrics().set_enabled(true);
  sim_.run_until(sim::SimTime::zero() + config_.warmup + config_.measure);
  system_->metrics().set_enabled(false);
}

LoadReport Experiment::load_report() const {
  SDSI_CHECK(ran_);
  const MetricsCollector& metrics = system_->metrics();
  const double seconds = measured_seconds();
  const auto nodes = static_cast<double>(config_.num_nodes);
  LoadReport report;
  for (std::size_t c = 0; c < report.per_component.size(); ++c) {
    std::uint64_t total = 0;
    for (NodeIndex node = 0; node < config_.num_nodes; ++node) {
      total += metrics.node_load(node, static_cast<LoadComponent>(c));
    }
    report.per_component[c] = static_cast<double>(total) / seconds / nodes;
    report.total += report.per_component[c];
  }
  report.per_node_total.reserve(config_.num_nodes);
  for (NodeIndex node = 0; node < config_.num_nodes; ++node) {
    report.per_node_total.push_back(
        static_cast<double>(metrics.node_load_total(node)) / seconds);
  }
  return report;
}

OverheadReport Experiment::overhead_report() const {
  SDSI_CHECK(ran_);
  const MetricsCollector& metrics = system_->metrics();
  auto ratio = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  OverheadReport report;
  report.mbr_internal =
      ratio(metrics.mbr().range_internal, metrics.mbr().originated);
  report.mbr_transit = ratio(metrics.mbr().transit, metrics.mbr().originated);
  report.query_internal =
      ratio(metrics.query().range_internal, metrics.query().originated);
  report.query_transit =
      ratio(metrics.query().transit, metrics.query().originated);
  report.neighbor_exchange =
      ratio(metrics.neighbor().originated, metrics.response().originated);
  report.response_transit =
      ratio(metrics.response().transit, metrics.response().originated);
  return report;
}

HopsReport Experiment::hops_report() const {
  SDSI_CHECK(ran_);
  const MetricsCollector& metrics = system_->metrics();
  HopsReport report;
  report.mbr = metrics.mbr().hops_routed.mean();
  report.mbr_internal = metrics.mbr().hops_internal.mean();
  report.query = metrics.query().hops_routed.mean();
  report.query_internal = metrics.query().hops_internal.mean();
  report.response = metrics.response().hops_routed.mean();
  return report;
}

QualityReport Experiment::quality_report() const {
  SDSI_CHECK(ran_);
  QualityReport report;
  report.queries_posed = queries_posed_;
  common::OnlineStats first_response;
  for (const auto& [id, record] : system_->client_records()) {
    report.responses_received += record.responses_received;
    report.matches_reported += record.matched_streams.size();
    if (record.first_response_at.has_value()) {
      first_response.add(
          (*record.first_response_at - record.issued_at).as_millis());
    }
  }
  report.mean_first_response_ms = first_response.mean();
  return report;
}

}  // namespace sdsi::core
