#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <functional>
#include <memory>

#include "core/obs_export.hpp"

namespace sdsi::core {

namespace {

StreamId stream_id_for_node(NodeIndex node) { return 1000 + node; }

}  // namespace

Experiment::Experiment(ExperimentConfig config)
    : config_(config),
      rng_factory_(config.seed),
      sim_(config.queue_backend),
      query_rng_(rng_factory_.make("query-arrivals")),
      query_walk_rng_(rng_factory_.make("query-patterns")),
      current_query_rate_(config.workload.query_rate_per_sec) {
  SDSI_CHECK(config_.num_nodes >= 1);
}

Experiment::~Experiment() = default;

void Experiment::build() {
  const common::IdSpace space(config_.id_bits);
  const bool skewed_placement = config_.adversarial.has_value() &&
                                config_.adversarial->placement_skew > 0.0;
  const std::vector<Key> ids =
      skewed_placement
          ? streams::skewed_node_ids(config_.num_nodes, space, config_.seed,
                                     config_.adversarial->placement_skew)
          : routing::hash_node_ids(config_.num_nodes, space, config_.seed);

  switch (config_.substrate) {
    case SubstrateKind::kChord: {
      chord::ChordConfig chord_config;
      chord_config.id_bits = config_.id_bits;
      chord_config.lookup_style = config_.chord_lookup;
      auto network = std::make_unique<chord::ChordNetwork>(sim_, chord_config);
      network->bootstrap(ids);
      routing_ = std::move(network);
      break;
    }
    case SubstrateKind::kPrefixRing: {
      routing::PrefixRingConfig prefix_config;
      prefix_config.id_bits = config_.id_bits;
      auto network =
          std::make_unique<routing::PrefixRing>(sim_, prefix_config);
      network->bootstrap(ids);
      routing_ = std::move(network);
      break;
    }
    case SubstrateKind::kStaticRing:
      routing_ = std::make_unique<routing::StaticRing>(sim_, space, ids);
      break;
  }

  if (config_.message_loss > 0.0) {
    routing_->set_message_loss(config_.message_loss,
                               rng_factory_.make("message-loss"));
  }

  MiddlewareConfig middleware;
  middleware.features = config_.features;
  middleware.strategy = config_.strategy;
  middleware.batching = config_.batching;
  middleware.multicast = config_.multicast;
  middleware.mbr_lifespan = config_.workload.mbr_lifespan;
  middleware.notify_period = config_.workload.notify_period;
  middleware.adaptive_precision = config_.adaptive_precision;
  middleware.mbr_ack.enabled = config_.mbr_acks;
  middleware.response_ack.enabled = config_.response_acks;
  middleware.mbr_refresh_period = config_.mbr_refresh_period;
  middleware.query_refresh_period = config_.query_refresh_period;
  middleware.replication_factor = config_.replication_factor;
  middleware.anti_entropy_period = config_.anti_entropy_period;
  middleware.overload = config_.overload;
  middleware.threads = config_.threads;
  middleware.rng_seed = rng_factory_.make("middleware-seed").next64();
  system_ = std::make_unique<MiddlewareSystem>(*routing_, middleware);
  system_->metrics().set_enabled(false);

  wire_observability();
  wire_faults();

  if (config_.oracle_sample_period > sim::Duration()) {
    oracle_ = std::make_unique<RecallOracle>();
    RecallOracle* oracle = oracle_.get();
    system_->set_publish_hook([oracle, this](const MbrPayload& payload) {
      oracle->on_publish(payload, sim_.now());
    });
    system_->set_query_hook(
        [oracle](std::shared_ptr<const SimilarityQuery> query) {
          oracle->on_subscribe(std::move(query));
        });
    oracle_task_ = sim_.schedule_periodic(
        sim_.now() + config_.oracle_sample_period,
        config_.oracle_sample_period, [this] { oracle_->sample(sim_.now()); });
  }
}

void Experiment::wire_observability() {
  if (!config_.obs.enabled()) {
    return;
  }
  std::filesystem::create_directories(config_.obs.dir);
  obs::MetricsRegistry::Options options;
  options.window = config_.obs.window;
  options.ring_capacity = config_.obs.ring_capacity;
  registry_ = std::make_unique<obs::MetricsRegistry>(&sim_, options);
  system_->metrics().set_registry(registry_.get());
  if (config_.obs.trace) {
    const std::string path = config_.obs.dir + "/trace.jsonl";
    trace_sink_ = std::make_unique<obs::JsonlTraceSink>(path);
    SDSI_CHECK(trace_sink_->ok());
    routing_->set_trace_sink(trace_sink_.get());
  }
  // Membership over time: sample the alive-node count once per window.
  sim_.schedule_periodic(sim_.now() + config_.obs.window, config_.obs.window,
                         [this] {
                           std::size_t alive = 0;
                           for (NodeIndex node = 0;
                                node < routing_->num_nodes(); ++node) {
                             if (routing_->is_alive(node)) {
                               ++alive;
                             }
                           }
                           registry_->gauge("nodes.alive")
                               .set(static_cast<double>(alive));
                         });
}

void Experiment::write_obs_exports() {
  if (registry_ == nullptr) {
    return;
  }
  registry_->flush();
  const std::string path = config_.obs.dir + "/metrics.json";
  SDSI_CHECK(write_metrics_json(*this, path));
  if (trace_sink_ != nullptr) {
    trace_sink_->flush();
  }
}

void Experiment::wire_faults() {
  if (config_.faults.empty()) {
    return;
  }
  if (config_.faults.has_link_faults()) {
    routing_->set_fault_model(std::make_shared<fault::LinkFaultModel>(
        config_.faults, routing_->id_space(),
        rng_factory_.make("fault-links")));
  }
  if (config_.faults.crash_waves.empty()) {
    return;
  }
  // Crash waves need a substrate with a membership protocol.
  auto* chord = dynamic_cast<chord::ChordNetwork*>(routing_.get());
  SDSI_CHECK(chord != nullptr);
  fault::MembershipHooks hooks;
  hooks.alive_nodes = [chord] {
    std::vector<NodeIndex> alive;
    for (NodeIndex node = 0; node < chord->num_nodes(); ++node) {
      if (chord->is_alive(node)) {
        alive.push_back(node);
      }
    }
    return alive;
  };
  hooks.crash = [chord](NodeIndex node) { chord->crash(node); };
  hooks.recover = [chord, this](NodeIndex node) {
    NodeIndex via = kInvalidNode;
    for (NodeIndex i = 0; i < chord->num_nodes(); ++i) {
      if (i != node && chord->is_alive(i)) {
        via = i;
        break;
      }
    }
    SDSI_CHECK(via != kInvalidNode);
    chord->recover(node, via);
    // A restarted data center comes back with empty soft state.
    system_->reset_node_soft_state(node);
    // With replication on, the rejoined node immediately pulls its key-range
    // slice from its successor instead of waiting for the refresh period.
    system_->handle_node_join(node);
  };
  hooks.maintenance = [chord](int rounds) {
    chord->run_maintenance_rounds(rounds);
  };
  injector_ = std::make_unique<fault::FaultInjector>(
      sim_, config_.faults, std::move(hooks),
      rng_factory_.make("fault-injector"));
  injector_->arm();
}

std::unique_ptr<streams::StreamGenerator> Experiment::make_generator(
    NodeIndex node) {
  switch (config_.stream_family) {
    case StreamFamily::kRandomWalk:
      return std::make_unique<streams::RandomWalkGenerator>(
          rng_factory_.make("stream-walk", node));
    case StreamFamily::kStockMarket: {
      // One shared market so tickers stay cross-correlated; built lazily on
      // the first node. Tickers advance the market in lockstep: all stock
      // streams share one period (closes arrive together), so ticker 0's
      // pull steps the whole market (see StockTickerStream).
      if (market_ == nullptr) {
        streams::StockMarketModel::Params params;
        params.num_tickers = config_.num_nodes;
        market_ = std::make_shared<streams::StockMarketModel>(
            rng_factory_.make("stock-market"), params);
      }
      return std::make_unique<streams::StockTickerStream>(market_, node);
    }
    case StreamFamily::kHostLoad:
      return std::make_unique<streams::HostLoadGenerator>(
          rng_factory_.make("stream-load", node));
  }
  SDSI_CHECK(false);
}

void Experiment::schedule_streams() {
  // "Each node is a source of exactly one stream", simulated as a periodic
  // process with per-stream period uniform in [PMIN, PMAX]. The stock
  // family keeps one common period so the shared market advances in
  // lockstep (daily closes arrive together at every data center).
  generators_.reserve(config_.num_nodes);
  common::Pcg32 period_rng = rng_factory_.make("stream-periods");
  const bool lockstep = config_.stream_family == StreamFamily::kStockMarket;
  const auto common_period = sim::Duration::micros(
      (config_.workload.stream_period_min.count_micros() +
       config_.workload.stream_period_max.count_micros()) /
      2);
  for (NodeIndex node = 0; node < config_.num_nodes; ++node) {
    const StreamId sid = stream_id_for_node(node);
    system_->register_stream(node, sid);
    generators_.push_back(make_generator(node));
    const auto period =
        lockstep ? common_period
                 : sim::Duration::micros(period_rng.uniform_int(
                       config_.workload.stream_period_min.count_micros(),
                       config_.workload.stream_period_max.count_micros()));
    const auto offset =
        lockstep ? sim::Duration()
                 : sim::Duration::micros(
                       period_rng.uniform_int(0, period.count_micros()));
    streams::StreamGenerator* generator = generators_.back().get();
    if (config_.overload.has_value()) {
      // Backpressure-aware emission: the gap to the next sample stretches
      // with the source's deferral-queue fill (up to 2x at a full queue), so
      // an overloaded source slows down instead of feeding the drop path.
      // Self-rescheduling closure with the same weak-ref pattern as
      // schedule_queries; benign runs keep the plain periodic schedule, so
      // enabling nothing changes nothing.
      auto emit = std::make_shared<std::function<void()>>();
      *emit = [this, node, sid, generator, period,
               weak = std::weak_ptr<std::function<void()>>(emit)] {
        if (routing_->is_alive(node)) {
          system_->post_stream_value(node, sid, generator->next());
        }
        const double stretch = 1.0 + system_->ingest_backpressure(node);
        if (auto self = weak.lock()) {
          sim_.schedule_after(
              sim::Duration::micros(static_cast<std::int64_t>(
                  static_cast<double>(period.count_micros()) * stretch)),
              [self] { (*self)(); });
        }
      };
      sim_.schedule_after(offset + period, [emit] { (*emit)(); });
      continue;
    }
    sim_.schedule_periodic(sim_.now() + offset + period, period,
                           [this, node, sid, generator] {
                             if (!routing_->is_alive(node)) {
                               return;  // crashed source emits nothing
                             }
                             system_->post_stream_value(node, sid,
                                                        generator->next());
                           });
  }
}

dsp::FeatureVector Experiment::query_features_from(common::Pcg32& rng) {
  // Query patterns are drawn from the same family as the data, so query
  // keys follow the data key distribution.
  std::vector<Sample> window(config_.features.window_size);
  switch (config_.stream_family) {
    case StreamFamily::kRandomWalk: {
      streams::RandomWalkGenerator walk(rng, rng.uniform(-10.0, 10.0));
      for (Sample& x : window) {
        x = walk.next();
      }
      break;
    }
    case StreamFamily::kStockMarket: {
      // A GBM price path with market-typical volatility.
      double price = 100.0;
      for (Sample& x : window) {
        price *= std::exp(0.0002 + 0.012 * rng.normal());
        x = price;
      }
      break;
    }
    case StreamFamily::kHostLoad: {
      streams::HostLoadGenerator load(rng);
      for (Sample& x : window) {
        x = load.next();
      }
      break;
    }
  }
  return system_->strategy().features_from_window(window);
}

dsp::FeatureVector Experiment::random_query_features() {
  if (pattern_pool_ != nullptr) {
    // Popularity-skewed pattern pool: one Zipf draw picks the rank, and the
    // pattern is regenerated from a rank-keyed rng stream — every query of
    // rank k carries the identical pattern (and thus the identical key
    // range), so popular ranks concentrate subscriptions onto one arc.
    const std::size_t rank = pattern_pool_->sample(query_walk_rng_);
    common::Pcg32 pattern_rng = rng_factory_.make("adversarial-pattern", rank);
    return query_features_from(pattern_rng);
  }
  dsp::FeatureVector features = query_features_from(query_walk_rng_);
  // Advance the shared rng so consecutive queries differ.
  query_walk_rng_ = common::Pcg32(query_walk_rng_.next64(),
                                  query_walk_rng_.next64());
  return features;
}

void Experiment::schedule_queries() {
  // Poisson arrivals at QRATE; every query is issued by a random node
  // ("queries are generated synthetically using a uniform distribution").
  auto arrival = std::make_shared<std::function<void()>>();
  // The closure must not own itself (shared_ptr cycle): each scheduled
  // event holds the strong reference, the closure only a weak one.
  *arrival = [this, weak = std::weak_ptr<std::function<void()>>(arrival)] {
    const NodeIndex client =
        client_zipf_ != nullptr
            ? static_cast<NodeIndex>(client_zipf_->sample(query_rng_))
            : static_cast<NodeIndex>(query_rng_.bounded(
                  static_cast<std::uint32_t>(config_.num_nodes)));
    const auto lifespan = sim::Duration::micros(query_rng_.uniform_int(
        config_.workload.query_lifespan_min.count_micros(),
        config_.workload.query_lifespan_max.count_micros()));
    // Draw the pattern unconditionally so the query workload stays
    // identical across runs that differ only in their fault plan.
    dsp::FeatureVector features = random_query_features();
    if (routing_->is_alive(client)) {
      system_->subscribe_similarity(client, std::move(features),
                                    config_.workload.query_radius, lifespan);
      ++queries_posed_;
    }
    const double gap = query_rng_.exponential(current_query_rate_);
    if (auto self = weak.lock()) {
      sim_.schedule_after(sim::Duration::seconds(gap),
                          [self] { (*self)(); });
    }
  };
  const double first_gap = query_rng_.exponential(current_query_rate_);
  sim_.schedule_after(sim::Duration::seconds(first_gap),
                      [arrival] { (*arrival)(); });
}

void Experiment::schedule_adversarial() {
  if (!config_.adversarial.has_value()) {
    return;
  }
  const streams::AdversarialSpec& spec = *config_.adversarial;
  if (spec.pattern_pool > 0) {
    pattern_pool_ = std::make_unique<streams::ZipfSampler>(
        spec.pattern_pool, spec.zipf_exponent);
  }
  if (spec.zipf_clients) {
    client_zipf_ = std::make_unique<streams::ZipfSampler>(config_.num_nodes,
                                                          spec.zipf_exponent);
  }
  if (spec.flash_crowd.has_value()) {
    // The shock marches the sector's tickers in lockstep (correlated keys)
    // while the crowd's queries arrive query_boost times faster — the
    // combined pile-up the overload layer exists to survive.
    SDSI_CHECK(config_.stream_family == StreamFamily::kStockMarket &&
               "flash crowds shock the stock-market sector factor");
    SDSI_CHECK(market_ != nullptr);
    const streams::FlashCrowd crowd = *spec.flash_crowd;
    SDSI_CHECK(crowd.query_boost > 0.0);
    sim_.schedule_after(sim::Duration::seconds(crowd.at_seconds),
                        [this, crowd] {
                          market_->apply_sector_shock(
                              crowd.sector, crowd.magnitude, crowd.steps);
                          current_query_rate_ =
                              config_.workload.query_rate_per_sec *
                              crowd.query_boost;
                        });
    sim_.schedule_after(
        sim::Duration::seconds(crowd.at_seconds +
                               crowd.boost_duration_seconds),
        [this] {
          current_query_rate_ = config_.workload.query_rate_per_sec;
        });
  }
}

void Experiment::prepare() {
  SDSI_CHECK(!ran_);
  SDSI_CHECK(!prepared_);
  prepared_ = true;
  build();
  schedule_streams();
  // Before schedule_queries: the first arrival draws its pattern from the
  // pool sampler, and after schedule_streams: the flash crowd needs the
  // shared market built by the first stock generator.
  schedule_adversarial();
  schedule_queries();
  system_->start();
}

void Experiment::run() {
  SDSI_CHECK(!ran_);
  if (!prepared_) {
    prepare();
  }
  ran_ = true;

  sim_.run_until(sim::SimTime::zero() + config_.warmup);
  system_->metrics().reset();
  system_->metrics().set_enabled(true);
  sim_.run_until(sim::SimTime::zero() + config_.warmup + config_.measure);
  // Oracle sampling ends with the measurement window; the drain below lets
  // the real system's in-flight detections, pushes, retries, and refreshes
  // settle so recall is read after healing, not mid-flight.
  oracle_task_.cancel();
  if (config_.drain > sim::Duration()) {
    sim_.run_until(sim::SimTime::zero() + config_.warmup + config_.measure +
                   config_.drain);
  }
  system_->metrics().set_enabled(false);
  write_obs_exports();
}

LoadReport Experiment::load_report() const {
  SDSI_CHECK(ran_);
  const MetricsCollector& metrics = system_->metrics();
  const double seconds = measured_seconds();
  const auto nodes = static_cast<double>(config_.num_nodes);
  LoadReport report;
  for (std::size_t c = 0; c < report.per_component.size(); ++c) {
    std::uint64_t total = 0;
    for (NodeIndex node = 0; node < config_.num_nodes; ++node) {
      total += metrics.node_load(node, static_cast<LoadComponent>(c));
    }
    report.per_component[c] = static_cast<double>(total) / seconds / nodes;
    report.total += report.per_component[c];
  }
  report.per_node_total.reserve(config_.num_nodes);
  for (NodeIndex node = 0; node < config_.num_nodes; ++node) {
    report.per_node_total.push_back(
        static_cast<double>(metrics.node_load_total(node)) / seconds);
  }
  return report;
}

OverheadReport Experiment::overhead_report() const {
  SDSI_CHECK(ran_);
  const MetricsCollector& metrics = system_->metrics();
  auto ratio = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  OverheadReport report;
  report.mbr_internal =
      ratio(metrics.mbr().range_internal, metrics.mbr().originated);
  report.mbr_transit = ratio(metrics.mbr().transit, metrics.mbr().originated);
  report.query_internal =
      ratio(metrics.query().range_internal, metrics.query().originated);
  report.query_transit =
      ratio(metrics.query().transit, metrics.query().originated);
  report.neighbor_exchange =
      ratio(metrics.neighbor().originated, metrics.response().originated);
  report.response_transit =
      ratio(metrics.response().transit, metrics.response().originated);
  return report;
}

HopsReport Experiment::hops_report() const {
  SDSI_CHECK(ran_);
  const MetricsCollector& metrics = system_->metrics();
  HopsReport report;
  report.mbr = metrics.mbr().hops_routed.mean();
  report.mbr_internal = metrics.mbr().hops_internal.mean();
  report.query = metrics.query().hops_routed.mean();
  report.query_internal = metrics.query().hops_internal.mean();
  report.response = metrics.response().hops_routed.mean();
  return report;
}

QualityReport Experiment::quality_report() const {
  SDSI_CHECK(ran_);
  QualityReport report;
  report.queries_posed = queries_posed_;
  common::OnlineStats first_response;
  for (const auto& [id, record] : system_->client_records()) {
    report.responses_received += record.responses_received;
    report.matches_reported += record.matched_streams.size();
    if (record.first_response_at.has_value()) {
      first_response.add(
          (*record.first_response_at - record.issued_at).as_millis());
    }
  }
  report.mean_first_response_ms = first_response.mean();
  return report;
}

RobustnessReport Experiment::robustness_report() const {
  SDSI_CHECK(ran_);
  const MetricsCollector& metrics = system_->metrics();
  const RobustnessCounters& counters = metrics.robustness();
  RobustnessReport report;

  if (oracle_ != nullptr) {
    const auto* crashed =
        injector_ != nullptr ? &injector_->ever_crashed() : nullptr;
    for (const auto& [query_id, stream] : oracle_->pairs()) {
      const ClientQueryRecord* record = system_->client_record(query_id);
      SDSI_CHECK(record != nullptr);
      if (crashed != nullptr && crashed->contains(record->client)) {
        continue;  // a dead client's losses are its own, not the index's
      }
      ++report.oracle_pairs;
      if (record->matched_streams.contains(stream)) {
        ++report.delivered_pairs;
      }
    }
    if (report.oracle_pairs > 0) {
      report.recall = static_cast<double>(report.delivered_pairs) /
                      static_cast<double>(report.oracle_pairs);
    }
  }

  std::uint64_t unique_events = 0;
  std::uint64_t duplicate_events = 0;
  for (const auto& [id, record] : system_->client_records()) {
    unique_events += record.match_events;
    duplicate_events += record.duplicate_match_events;
  }
  if (unique_events + duplicate_events > 0) {
    report.duplicate_delivery_rate =
        static_cast<double>(duplicate_events) /
        static_cast<double>(unique_events + duplicate_events);
  }

  report.duplicate_stores = counters.duplicate_stores;
  report.mbr_retries = counters.mbr_retries;
  report.mbr_retry_exhausted = counters.mbr_retry_exhausted;
  report.mbr_refreshes = counters.mbr_refreshes;
  report.mbr_acks = counters.mbr_acks;
  report.response_retries = counters.response_retries;
  report.location_retries = counters.location_retries;
  report.heals = counters.heal_latency_ms.count();
  report.mean_heal_latency_ms = counters.heal_latency_ms.mean();
  report.max_heal_latency_ms = counters.heal_latency_ms.max();
  report.p50_heal_latency_ms = counters.heal_latency_ms.p50();
  report.p90_heal_latency_ms = counters.heal_latency_ms.p90();
  report.p99_heal_latency_ms = counters.heal_latency_ms.p99();
  for (std::size_t c = 0; c < report.drops_by_cause.size(); ++c) {
    report.drops_by_cause[c] = metrics.drops(static_cast<fault::DropCause>(c));
  }
  if (injector_ != nullptr) {
    report.crashes = injector_->crashes_executed();
    report.recoveries = injector_->recoveries_executed();
  }
  report.replica_puts = counters.replica_puts;
  report.replica_repairs = counters.replica_repairs;
  report.handoff_entries = counters.handoff_entries;
  report.handoff_bytes = counters.handoff_bytes;
  report.aggregator_failovers = counters.aggregator_failovers;
  report.report_detours = counters.report_detours;
  report.oracle_fallbacks = counters.oracle_fallbacks;
  report.mean_failover_latency_ms = counters.failover_latency_ms.mean();
  report.p90_failover_latency_ms = counters.failover_latency_ms.p90();
  report.max_failover_latency_ms = counters.failover_latency_ms.max();

  report.hot_arc_splits = counters.hot_arc_splits;
  report.hot_arc_merges = counters.hot_arc_merges;
  report.split_diverted_stores = counters.split_diverted_stores;
  report.shed_mbrs = counters.shed_mbrs;
  report.backpressure_deferrals = counters.backpressure_deferrals;
  report.backpressure_drops = counters.backpressure_drops;
  const auto p99_over_median = [](std::vector<std::uint64_t> values) {
    if (values.empty()) {
      return 0.0;
    }
    std::sort(values.begin(), values.end());
    const std::uint64_t median = values[(values.size() - 1) / 2];
    const auto p99_index = static_cast<std::size_t>(
        std::llround(0.99 * static_cast<double>(values.size() - 1)));
    const std::uint64_t p99 = values[p99_index];
    return median == 0 ? 0.0
                       : static_cast<double>(p99) / static_cast<double>(median);
  };
  std::vector<std::uint64_t> message_load;
  std::vector<std::uint64_t> work;
  message_load.reserve(config_.num_nodes);
  work.reserve(config_.num_nodes);
  for (NodeIndex node = 0; node < config_.num_nodes; ++node) {
    message_load.push_back(metrics.node_load_total(node));
    work.push_back(metrics.node_work_total(node));
  }
  report.message_load_p99_over_median = p99_over_median(std::move(message_load));
  report.work_p99_over_median = p99_over_median(std::move(work));
  return report;
}

}  // namespace sdsi::core
