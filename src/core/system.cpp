#include "core/system.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>

#include "dsp/normalize.hpp"

namespace sdsi::core {

namespace {

template <typename T>
std::shared_ptr<const T> payload_of(const routing::Message& msg) {
  const auto* ptr = std::any_cast<std::shared_ptr<const T>>(&msg.payload);
  SDSI_CHECK(ptr != nullptr);
  return *ptr;
}

}  // namespace

MiddlewareSystem::MiddlewareSystem(routing::RoutingSystem& routing,
                                   MiddlewareConfig config)
    : routing_(routing),
      config_(config),
      mapper_(routing.id_space()),
      metrics_(routing.num_nodes()),
      pool_(WorkerPool::resolve(config.threads) > 1
                ? std::make_unique<WorkerPool>(config.threads)
                : nullptr),
      nodes_(routing.num_nodes()),
      rng_(common::RngFactory(config.rng_seed).make("middleware.jitter")) {
  config_.features.validate();
  strategy_ = IndexingStrategy::make(config_.strategy, config_.features,
                                     routing_.id_space());
  if (config_.overload.has_value()) {
    SDSI_CHECK(config_.overload->split_ways >= 1);
    SDSI_CHECK(config_.overload->forced_shed_rate >= 0.0 &&
               config_.overload->forced_shed_rate < 1.0);
    SDSI_CHECK(config_.overload->window > sim::Duration());
    hot_arc_ = HotArcDetector(config_.overload->detector, nodes_.size());
  }
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    nodes_[i].index = i;
  }
  metrics_.set_clock(&routing_.simulator());
  routing_.set_metrics_hook(&metrics_);
  routing_.set_deliver(
      [this](NodeIndex at, const Message& msg) { on_deliver(at, msg); });
}

void MiddlewareSystem::schedule_tick(NodeIndex index, sim::Duration offset) {
  sim::Simulator& sim = routing_.simulator();
  sim.schedule_periodic(sim.now() + offset + config_.notify_period,
                        config_.notify_period,
                        [this, index] { periodic_tick(index); });
}

void MiddlewareSystem::start() {
  SDSI_CHECK(!started_);
  started_ = true;
  const std::int64_t period_us = config_.notify_period.count_micros();
  const std::int64_t refresh_us = config_.mbr_refresh_period.count_micros();
  const std::int64_t entropy_us =
      replication_on() ? config_.anti_entropy_period.count_micros() : 0;
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    // Stagger ticks across one period: data centers do not share a clock.
    schedule_tick(i, sim::Duration::micros(
                         period_us * static_cast<std::int64_t>(i) /
                         static_cast<std::int64_t>(nodes_.size())));
    if (refresh_us > 0) {
      schedule_mbr_refresh(
          i, sim::Duration::micros(refresh_us * static_cast<std::int64_t>(i) /
                                   static_cast<std::int64_t>(nodes_.size())));
    }
    if (entropy_us > 0) {
      schedule_anti_entropy(
          i, sim::Duration::micros(entropy_us * static_cast<std::int64_t>(i) /
                                   static_cast<std::int64_t>(nodes_.size())));
    }
  }
  if (config_.overload.has_value()) {
    // One GLOBAL detector window (not per-node, not staggered): split and
    // merge decisions read every node's counter in one serial pass, so the
    // schedule is a pure function of the seed at any thread count.
    sim::Simulator& sim = routing_.simulator();
    sim.schedule_periodic(sim.now() + config_.overload->window,
                          config_.overload->window,
                          [this] { overload_tick(); });
  }
}

MiddlewareNode& MiddlewareSystem::state_of(NodeIndex index) {
  if (index >= nodes_.size()) {
    attach_node(index);
  }
  return nodes_[index];
}

void MiddlewareSystem::attach_node(NodeIndex index) {
  while (nodes_.size() <= index) {
    const auto fresh = static_cast<NodeIndex>(nodes_.size());
    nodes_.emplace_back();
    nodes_.back().index = fresh;
    if (started_) {
      schedule_tick(fresh, sim::Duration());
      if (config_.mbr_refresh_period > sim::Duration()) {
        schedule_mbr_refresh(fresh, sim::Duration());
      }
      if (replication_on() &&
          config_.anti_entropy_period > sim::Duration()) {
        schedule_anti_entropy(fresh, sim::Duration());
      }
    }
  }
  metrics_.ensure_nodes(nodes_.size());
}

void MiddlewareSystem::reset_node_soft_state(NodeIndex index) {
  MiddlewareNode& state = state_of(index);
  state.store = IndexStore{};
  state.aggregations.clear();
  state.outgoing_reports.clear();
  state.location_directory.clear();
  state.location_cache.clear();
  state.pending_inner_queries.clear();
  for (auto& [key, pub] : state.published_mbrs) {
    pub.retry_timer.cancel();
  }
  state.published_mbrs.clear();
  state.location_retry_attempts.clear();
  state.aggregation_replicas.clear();
  state.overload = MiddlewareNode::OverloadState{};
}

// --- Application primitives --------------------------------------------------

void MiddlewareSystem::register_stream(NodeIndex node, StreamId stream) {
  MbrBatcher::Options batching = config_.batching;
  if (config_.adaptive_precision.has_value()) {
    batching.mode = MbrBatcher::Mode::kAdaptive;
    batching.max_extent =
        AdaptivePrecisionController(*config_.adaptive_precision).extent();
  }
  auto [it, inserted] = state_of(node).streams.try_emplace(
      stream, stream, *strategy_, batching);
  SDSI_CHECK(inserted);
  if (config_.adaptive_precision.has_value()) {
    it->second.precision.emplace(*config_.adaptive_precision);
  }

  Message msg;
  msg.kind = MsgKind::kLocationPut;
  msg.payload = std::make_shared<const LocationPutPayload>(
      LocationPutPayload{stream, node});
  routing_.send(node, mapper_.key_for_stream(stream), std::move(msg));
}

void MiddlewareSystem::unregister_stream(NodeIndex node, StreamId stream) {
  MiddlewareNode& state = state_of(node);
  const auto it = state.streams.find(stream);
  SDSI_CHECK(it != state.streams.end());
  if (std::optional<dsp::Mbr> partial = it->second.batcher.flush()) {
    route_mbr(node, it->second, std::move(*partial));
  }
  state.streams.erase(it);

  Message msg;
  msg.kind = MsgKind::kLocationPut;
  msg.payload = std::make_shared<const LocationPutPayload>(
      LocationPutPayload{stream, kInvalidNode});  // tombstone
  routing_.send(node, mapper_.key_for_stream(stream), std::move(msg));
}

namespace {

/// The pure (routing-free) part of ingesting one value: summarizer push,
/// feature extraction, batcher update, adaptive-precision observation.
/// Closed MBRs are appended to `closed` for the caller to route. Shared by
/// the per-value and burst ingest paths so they cannot diverge.
void summarize_value(LocalStream& local, Sample value,
                     std::vector<dsp::Mbr>& closed) {
  local.summarizer->push(value);
  if (!local.summarizer->features_into(local.features_scratch)) {
    return;  // window not full yet, or degenerate (constant) window
  }
  std::optional<dsp::Mbr> mbr = local.batcher.push(local.features_scratch);
  if (local.precision.has_value()) {
    local.batcher.set_max_extent(local.precision->observe(mbr.has_value()));
  }
  if (mbr.has_value()) {
    closed.push_back(std::move(*mbr));
  }
}

}  // namespace

void MiddlewareSystem::post_stream_value(NodeIndex node, StreamId stream,
                                         Sample value) {
  MiddlewareNode& state = state_of(node);
  const auto it = state.streams.find(stream);
  SDSI_CHECK(it != state.streams.end());
  LocalStream& local = it->second;
  std::vector<dsp::Mbr> closed;
  summarize_value(local, value, closed);
  for (dsp::Mbr& mbr : closed) {
    route_mbr(node, local, std::move(mbr));
  }
}

void MiddlewareSystem::post_stream_burst(
    const std::vector<StreamBurst>& bursts) {
  struct Task {
    LocalStream* local = nullptr;
    const StreamBurst* burst = nullptr;
    std::vector<dsp::Mbr> closed;
  };
  std::vector<Task> tasks;
  tasks.reserve(bursts.size());
  std::set<std::pair<NodeIndex, StreamId>> targets;
  for (const StreamBurst& burst : bursts) {
    MiddlewareNode& state = state_of(burst.node);
    const auto it = state.streams.find(burst.stream);
    SDSI_CHECK(it != state.streams.end());
    SDSI_CHECK(targets.emplace(burst.node, burst.stream).second &&
               "bursts must target distinct (node, stream) pairs");
    tasks.push_back(Task{&it->second, &burst, {}});
  }
  // Phase 1 — summarize, sharded across the pool. Each task owns its
  // stream's summarizer/batcher exclusively (distinct targets, checked
  // above) and touches nothing else, so the only coordination is the
  // barrier. While the window cannot fill yet the serial path consults no
  // features, so that cold prefix takes the batched push_span lane.
  const auto summarize_burst = [](Task& task) {
    LocalStream& local = *task.local;
    std::span<const Sample> values(task.burst->values);
    const std::size_t until_ready = local.summarizer->samples_until_ready();
    if (until_ready > 1) {
      const std::size_t cold = std::min(values.size(), until_ready - 1);
      local.summarizer->push_span(values.first(cold));
      values = values.subspan(cold);
    }
    for (const Sample value : values) {
      summarize_value(local, value, task.closed);
    }
  };
  if (pool_ != nullptr && tasks.size() > 1) {
    pool_->parallel_for(tasks.size(),
                        [&](std::size_t i) { summarize_burst(tasks[i]); });
  } else {
    for (Task& task : tasks) {
      summarize_burst(task);
    }
  }
  // Phase 2 — route the closed MBRs serially in burst order. Routing never
  // feeds back into summarization, so this sequence (messages, batch_seq,
  // retry-jitter rng draws) is exactly the per-value loop's.
  for (Task& task : tasks) {
    for (dsp::Mbr& mbr : task.closed) {
      route_mbr(task.burst->node, *task.local, std::move(mbr));
    }
  }
}

void MiddlewareSystem::route_mbr(NodeIndex source, LocalStream& stream,
                                 dsp::Mbr mbr) {
  if (config_.overload.has_value() && config_.overload->publish_budget > 0) {
    MiddlewareNode::OverloadState& ov = nodes_[source].overload;
    if (ov.window_published >= config_.overload->publish_budget) {
      defer_publication(source, stream.id, std::move(mbr));
      return;
    }
    ++ov.window_published;
  }
  publish_mbr(source, stream, std::move(mbr));
}

void MiddlewareSystem::publish_mbr(NodeIndex source, LocalStream& stream,
                                   dsp::Mbr mbr) {
  const sim::SimTime now = routing_.simulator().now();
  // The strategy may return several ranges (multi-probe lsh); the first is
  // the primary, which alone drives acks, refresh, and replication mirrors.
  // For dft/ecm the set is exactly the paper's Eq. 6 interval.
  strategy_->key_map().mbr_ranges(mbr, range_scratch_);
  const auto [lo, hi] = range_scratch_.front();
  // The expiry instant is fixed HERE, once: retransmissions and refreshes
  // re-send the identical payload, so every replica stores the same entry
  // and redelivery stays idempotent.
  const sim::SimTime expires = now + config_.mbr_lifespan;
  const auto payload = std::make_shared<const MbrPayload>(MbrPayload{
      stream.id, source, std::move(mbr), stream.batch_seq++, expires});
  if (publish_hook_) {
    publish_hook_(*payload);
  }

  if (config_.store_local_summaries) {
    const IndexStore::StoredMbr entry{payload->stream, source, payload->mbr,
                                      payload->batch_seq, now, expires};
    const bool added = nodes_[source].store.add_mbr(entry);
    if (added) {
      note_node_work(source, 1);
    }
    // When the source itself owns the range's hi end, the routed copy will
    // dedup against this local store and handle_mbr never sees a first
    // store — mirror from here so the batch still reaches the replica set.
    if (added && replication_on() && covers_key(source, hi)) {
      mirror_mbr(source, entry);
    }
  }

  Message msg;
  msg.kind = MsgKind::kMbrUpdate;
  msg.payload = payload;
  // With replication on, a landing copy whose terminal hop died in flight
  // detours to the successor-list replica, which stores and acks — cutting
  // the retry tail short.
  msg.reroute_on_dead = replication_on();
  // Allocate the publication's trace id up front so retries and refreshes
  // can re-use it (routing would otherwise mint a fresh one per send).
  const std::uint64_t trace_id = routing_.allocate_trace_id();
  msg.trace_id = trace_id;
  routing_.send_range(source, lo, hi, std::move(msg), config_.multicast);
  ++mbrs_routed_;

  // Extra probe ranges (multi-probe strategies; none for dft/ecm). Each
  // carries the same idempotent payload, so redundant landings dedup; they
  // are fire-and-forget — only the primary range is acked and refreshed.
  for (std::size_t i = 1; i < range_scratch_.size(); ++i) {
    Message probe;
    probe.kind = MsgKind::kMbrUpdate;
    probe.payload = payload;
    probe.reroute_on_dead = replication_on();
    routing_.send_range(source, range_scratch_[i].first,
                        range_scratch_[i].second, std::move(probe),
                        config_.multicast);
  }

  if (config_.mbr_ack.enabled ||
      config_.mbr_refresh_period > sim::Duration()) {
    PublishedMbr pub;
    pub.payload = payload;
    pub.lo = lo;
    pub.hi = hi;
    pub.first_sent = now;
    pub.trace_id = trace_id;
    nodes_[source].published_mbrs.insert_or_assign(
        std::make_pair(payload->stream, payload->batch_seq), std::move(pub));
    if (config_.mbr_ack.enabled) {
      arm_mbr_retry(source, payload->stream, payload->batch_seq);
    }
  }
}

sim::Duration MiddlewareSystem::backoff_delay(const RetryPolicy& policy,
                                              int attempts) {
  const std::int64_t cap = policy.max_backoff.count_micros();
  std::int64_t delay = policy.timeout.count_micros();
  for (int i = 0; i < attempts && delay < cap; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, cap);
  const std::int64_t jitter_span = policy.jitter.count_micros();
  if (jitter_span > 0) {
    delay += rng_.uniform_int(0, jitter_span - 1);
  }
  return sim::Duration::micros(delay);
}

void MiddlewareSystem::emit_heal_trace(obs::TraceEventKind event,
                                       NodeIndex node, StreamId stream,
                                       std::uint64_t seq,
                                       std::uint64_t trace_id) {
  obs::TraceSink* sink = routing_.trace_sink();
  if (sink == nullptr) {
    return;
  }
  obs::TraceRecord record;
  record.trace_id = trace_id;
  record.event = event;
  record.at_us = routing_.simulator().now().count_micros();
  record.node = node;
  record.kind = static_cast<int>(MsgKind::kMbrUpdate);
  record.stream = stream;
  record.batch_seq = seq;
  sink->record(record);
}

void MiddlewareSystem::note_mbr_ack(NodeIndex source, StreamId stream,
                                    std::uint64_t seq) {
  if (source >= nodes_.size()) {
    return;
  }
  MiddlewareNode& state = nodes_[source];
  const auto it = state.published_mbrs.find({stream, seq});
  if (it == state.published_mbrs.end() || it->second.acked) {
    return;
  }
  PublishedMbr& pub = it->second;
  pub.acked = true;
  pub.retry_timer.cancel();
  if (pub.attempts > 0) {
    const double ms =
        (routing_.simulator().now() - pub.first_sent).as_millis();
    emit_heal_trace(obs::TraceEventKind::kHeal, source, stream, seq,
                    pub.trace_id);
    // The registry series cover the whole run (warm-up included), like the
    // routing-side series in MetricsCollector.
    if (metrics_.registry() != nullptr) {
      metrics_.registry()->histogram("heal.latency_ms").add(ms);
    }
    if (metrics_.recording()) {
      metrics_.robustness().heal_latency_ms.add(ms);
    }
  }
  if (metrics_.recording()) {
    ++metrics_.robustness().mbr_acks;
  }
}

void MiddlewareSystem::arm_mbr_retry(NodeIndex source, StreamId stream,
                                     std::uint64_t seq) {
  MiddlewareNode& state = nodes_[source];
  const auto it = state.published_mbrs.find({stream, seq});
  SDSI_CHECK(it != state.published_mbrs.end());
  PublishedMbr& pub = it->second;
  pub.retry_timer = routing_.simulator().schedule_after(
      backoff_delay(config_.mbr_ack, pub.attempts),
      [this, source, stream, seq] { on_mbr_ack_timeout(source, stream, seq); });
}

void MiddlewareSystem::on_mbr_ack_timeout(NodeIndex source, StreamId stream,
                                          std::uint64_t seq) {
  if (!routing_.is_alive(source)) {
    return;  // a recovered source starts over via reset_node_soft_state
  }
  MiddlewareNode& state = nodes_[source];
  const auto it = state.published_mbrs.find({stream, seq});
  if (it == state.published_mbrs.end() || it->second.acked) {
    return;
  }
  PublishedMbr& pub = it->second;
  const sim::SimTime now = routing_.simulator().now();
  if (pub.payload->expires <= now) {
    state.published_mbrs.erase(it);  // batch lapsed; nothing left to heal
    return;
  }
  if (pub.attempts >= config_.mbr_ack.max_attempts) {
    if (metrics_.recording()) {
      ++metrics_.robustness().mbr_retry_exhausted;
    }
    return;  // budget spent; the soft-state refresh is the backstop now
  }
  ++pub.attempts;
  if (metrics_.recording()) {
    ++metrics_.robustness().mbr_retries;
  }
  if (metrics_.registry() != nullptr) {
    metrics_.registry()->counter("heal.retries").add();
  }
  emit_heal_trace(obs::TraceEventKind::kRetry, source, stream, seq,
                  pub.trace_id);
  Message retry;
  retry.kind = MsgKind::kMbrUpdate;
  retry.payload = pub.payload;
  retry.trace_id = pub.trace_id;
  retry.reroute_on_dead = replication_on();
  routing_.send_range(source, pub.lo, pub.hi, std::move(retry),
                      config_.multicast);
  if (replication_on()) {
    // Hedged retry: a second multicast staggered past the mean burst
    // length, so a loss burst that swallows the retry no longer doubles the
    // heal time to another full timeout. Store dedup and idempotent acks
    // make the extra copy side-effect free (replicas mirror only on first
    // store), and hedges run only on the rare already-failed publications.
    routing_.simulator().schedule_after(
        sim::Duration::millis(150), [this, source, stream, seq] {
          if (!routing_.is_alive(source)) {
            return;
          }
          MiddlewareNode& src_state = nodes_[source];
          const auto hedge_it = src_state.published_mbrs.find({stream, seq});
          if (hedge_it == src_state.published_mbrs.end() ||
              hedge_it->second.acked ||
              hedge_it->second.payload->expires <=
                  routing_.simulator().now()) {
            return;
          }
          PublishedMbr& pending = hedge_it->second;
          if (metrics_.registry() != nullptr) {
            metrics_.registry()->counter("heal.retry_hedges").add();
          }
          Message hedge;
          hedge.kind = MsgKind::kMbrUpdate;
          hedge.payload = pending.payload;
          hedge.trace_id = pending.trace_id;
          hedge.reroute_on_dead = true;
          routing_.send_range(source, pending.lo, pending.hi,
                              std::move(hedge), config_.multicast);
        });
  }
  arm_mbr_retry(source, stream, seq);
}

void MiddlewareSystem::schedule_mbr_refresh(NodeIndex index,
                                            sim::Duration offset) {
  sim::Simulator& sim = routing_.simulator();
  sim.schedule_periodic(sim.now() + offset + config_.mbr_refresh_period,
                        config_.mbr_refresh_period,
                        [this, index] { refresh_node_mbrs(index); });
}

void MiddlewareSystem::refresh_node_mbrs(NodeIndex index) {
  if (!routing_.is_alive(index)) {
    return;
  }
  MiddlewareNode& state = nodes_[index];
  const sim::SimTime now = routing_.simulator().now();
  for (auto it = state.published_mbrs.begin();
       it != state.published_mbrs.end();) {
    PublishedMbr& pub = it->second;
    if (pub.payload->expires <= now) {
      pub.retry_timer.cancel();
      it = state.published_mbrs.erase(it);
      continue;
    }
    Message msg;
    msg.kind = MsgKind::kMbrUpdate;
    msg.payload = pub.payload;
    msg.trace_id = pub.trace_id;
    msg.reroute_on_dead = replication_on();
    emit_heal_trace(obs::TraceEventKind::kRefresh, index,
                    pub.payload->stream, pub.payload->batch_seq,
                    pub.trace_id);
    routing_.send_range(index, pub.lo, pub.hi, std::move(msg),
                        config_.multicast);
    if (metrics_.recording()) {
      ++metrics_.robustness().mbr_refreshes;
    }
    if (metrics_.registry() != nullptr) {
      metrics_.registry()->counter("heal.refreshes").add();
    }
    ++it;
  }
  // Heal the h2 directory too: the fragment holding one of our streams'
  // mappings may itself have crashed and lost the registration.
  for (const auto& [stream_id, local] : state.streams) {
    (void)local;
    Message msg;
    msg.kind = MsgKind::kLocationPut;
    msg.payload = std::make_shared<const LocationPutPayload>(
        LocationPutPayload{stream_id, index});
    routing_.send(index, mapper_.key_for_stream(stream_id), std::move(msg));
  }
}

QueryId MiddlewareSystem::subscribe_similarity(NodeIndex client,
                                               dsp::FeatureVector features,
                                               double radius,
                                               sim::Duration lifespan) {
  (void)state_of(client);
  SDSI_CHECK(radius >= 0.0);
  const sim::SimTime now = routing_.simulator().now();
  const QueryId id = next_query_id_++;

  auto query = std::make_shared<const SimilarityQuery>(SimilarityQuery{
      id, client, std::move(features), radius, lifespan, now});
  if (query_hook_) {
    query_hook_(query);
  }
  // Primary range first: its midpoint keys the aggregator, and the refresh
  // loop below re-sends it alone. Extra probe ranges (multi-probe lsh) are
  // installed once, fire-and-forget, after the primary send.
  strategy_->key_map().query_ranges(query->features, radius, range_scratch_);
  const auto [lo, hi] = range_scratch_.front();
  const Key middle = routing_.id_space().midpoint(lo, hi);
  const std::vector<std::pair<Key, Key>> probes(range_scratch_.begin() + 1,
                                                range_scratch_.end());

  ClientQueryRecord record;
  record.id = id;
  record.client = client;
  record.issued_at = now;
  record.expires = now + lifespan;
  client_records_.emplace(id, std::move(record));

  const auto payload = std::make_shared<const SimilarityQueryPayload>(
      SimilarityQueryPayload{std::move(query), middle});
  Message msg;
  msg.kind = MsgKind::kSimilarityQuery;
  msg.payload = payload;
  msg.reroute_on_dead = replication_on();
  routing_.send_range(client, lo, hi, std::move(msg), config_.multicast);

  for (const auto& [plo, phi] : probes) {
    Message probe;
    probe.kind = MsgKind::kSimilarityQuery;
    probe.payload = payload;
    probe.reroute_on_dead = replication_on();
    routing_.send_range(client, plo, phi, std::move(probe),
                        config_.multicast);
  }

  if (config_.query_refresh_period > sim::Duration()) {
    // Soft state: periodically reinstall the subscription across the range
    // until the lifespan runs out.
    sim::Simulator& sim = routing_.simulator();
    const sim::SimTime expires = now + lifespan;
    auto handle = std::make_shared<sim::TaskHandle>();
    *handle = sim.schedule_periodic(
        sim.now() + config_.query_refresh_period,
        config_.query_refresh_period,
        [this, client, lo, hi, payload, expires, handle] {
          if (routing_.simulator().now() >= expires ||
              !routing_.is_alive(client)) {
            handle->cancel();
            return;
          }
          Message refresh;
          refresh.kind = MsgKind::kSimilarityQuery;
          refresh.payload = payload;
          refresh.reroute_on_dead = replication_on();
          routing_.send_range(client, lo, hi, std::move(refresh),
                              config_.multicast);
        });
  }
  return id;
}

QueryId MiddlewareSystem::subscribe_similarity_window(
    NodeIndex client, std::span<const Sample> window, double radius,
    sim::Duration lifespan) {
  return subscribe_similarity(
      client, strategy_->features_from_window(window), radius, lifespan);
}

QueryId MiddlewareSystem::subscribe_inner_product(
    NodeIndex client, StreamId stream, std::vector<double> index,
    std::vector<double> weights, sim::Duration lifespan) {
  (void)state_of(client);
  SDSI_CHECK(index.size() == weights.size());
  SDSI_CHECK(index.size() <= config_.features.window_size);
  const sim::SimTime now = routing_.simulator().now();
  const QueryId id = next_query_id_++;
  auto query = std::make_shared<const InnerProductQuery>(
      InnerProductQuery{id, client, stream, std::move(index),
                        std::move(weights), lifespan, now});

  ClientQueryRecord record;
  record.id = id;
  record.client = client;
  record.inner_product = true;
  record.issued_at = now;
  record.expires = now + lifespan;
  client_records_.emplace(id, std::move(record));

  MiddlewareNode& state = state_of(client);
  const auto cached = state.location_cache.find(stream);
  if (cached != state.location_cache.end()) {
    dispatch_inner_query(client, std::move(query), cached->second);
    return id;
  }
  const bool resolution_in_flight =
      state.pending_inner_queries.contains(stream);
  state.pending_inner_queries[stream].push_back(std::move(query));
  if (!resolution_in_flight) {
    Message msg;
    msg.kind = MsgKind::kLocationGet;
    msg.payload = std::make_shared<const LocationGetPayload>(
        LocationGetPayload{stream, client});
    routing_.send(client, mapper_.key_for_stream(stream), std::move(msg));
  }
  return id;
}

void MiddlewareSystem::dispatch_inner_query(
    NodeIndex client, std::shared_ptr<const InnerProductQuery> query,
    NodeIndex source) {
  Message msg;
  msg.kind = MsgKind::kInnerProductQuery;
  msg.payload = std::make_shared<const InnerProductQueryPayload>(
      InnerProductQueryPayload{std::move(query)});
  routing_.send(client, routing_.node_id(source), std::move(msg));
}

// --- Delivery dispatch --------------------------------------------------------

void MiddlewareSystem::on_deliver(NodeIndex at, const Message& msg) {
  switch (msg.kind) {
    case MsgKind::kMbrUpdate:
      handle_mbr(at, msg);
      return;
    case MsgKind::kSimilarityQuery:
      handle_similarity_query(at, msg);
      return;
    case MsgKind::kInnerProductQuery:
      handle_inner_query(at, msg);
      return;
    case MsgKind::kResponse:
      handle_response(at, msg);
      return;
    case MsgKind::kNeighborExchange:
      handle_neighbor_digest(at, msg);
      return;
    case MsgKind::kLocationPut:
      handle_location_put(at, msg);
      return;
    case MsgKind::kLocationGet:
      handle_location_get(at, msg);
      return;
    case MsgKind::kLocationReply:
      handle_location_reply(at, msg);
      return;
    case MsgKind::kMbrAck:
      handle_mbr_ack(at, msg);
      return;
    case MsgKind::kResponseAck:
      handle_response_ack(at, msg);
      return;
    case MsgKind::kReplicaPut:
      handle_replica_put(at, msg);
      return;
    case MsgKind::kHandoffRequest:
      handle_handoff_request(at, msg);
      return;
    case MsgKind::kAntiEntropyDigest:
      handle_anti_entropy_digest(at, msg);
      return;
    case MsgKind::kAntiEntropyRequest:
      handle_anti_entropy_request(at, msg);
      return;
    case MsgKind::kAggregatorReplica:
      handle_aggregator_replica(at, msg);
      return;
    case MsgKind::kHeartbeat:
      // Liveness beacons belong to the socket ring's failure detector
      // (net::NetNode); the sim middleware learns liveness from its
      // membership hooks instead, so a stray heartbeat is inert.
      return;
    case MsgKind::kInvalid:
      break;
  }
  SDSI_CHECK(false);
}

void MiddlewareSystem::handle_mbr(NodeIndex at, const Message& msg) {
  const auto payload = payload_of<MbrPayload>(msg);
  const sim::SimTime now = routing_.simulator().now();
  if (!(config_.store_local_summaries && at == payload->source)) {
    // Load shedding: a node past its per-window ingest budget (or under a
    // forced-shed experiment) refuses the store as an ACCOUNTED drop before
    // paying for dedup, indexing, or matching. Shed copies are not acked,
    // so an acked source treats them exactly like a lost transmission.
    if (config_.overload.has_value() && shed_ingest(at, msg)) {
      return;
    }
    MiddlewareNode& state = state_of(at);
    // Hot-arc splitting: while this node is hot, each arriving batch is
    // deterministically assigned to one member of the split group
    // (hash(stream, batch_seq) — seed- and thread-count-stable). Batches
    // owned by a delegate are forwarded via the idempotent kReplicaPut path
    // instead of being stored and matched here; the delegates hold mirrors
    // of this node's subscriptions, so the match still happens — elsewhere.
    if (config_.overload.has_value() &&
        !state.overload.split_delegates.empty()) {
      const NodeIndex target =
          divert_target(state, payload->stream, payload->batch_seq);
      if (target != kInvalidNode) {
        // Fall through to the ack below afterwards: the batch is durably on
        // its way to a split-group member, which is what the ack promises.
        divert_store(at, target,
                     IndexStore::StoredMbr{payload->stream, payload->source,
                                           payload->mbr, payload->batch_seq,
                                           now, payload->expires});
      } else {
        store_mbr_with_work(at, msg, *payload, now);
      }
    } else {
      store_mbr_with_work(at, msg, *payload, now);
    }
  }
  if (!config_.mbr_ack.enabled || msg.range_internal) {
    return;  // only the landing copy of a multicast acknowledges
  }
  if (at == payload->source) {
    note_mbr_ack(at, payload->stream, payload->batch_seq);
    return;
  }
  Message ack;
  ack.kind = MsgKind::kMbrAck;
  ack.payload = std::make_shared<const MbrAckPayload>(
      MbrAckPayload{payload->stream, payload->batch_seq});
  routing_.send_direct(at, payload->source, std::move(ack));
}

bool MiddlewareSystem::store_mbr_with_work(NodeIndex at, const Message& msg,
                                           const MbrPayload& payload,
                                           sim::SimTime now) {
  // The payload carries its absolute expiry, so a retransmitted or
  // refreshed copy stores exactly what the first delivery would have.
  const IndexStore::StoredMbr entry{payload.stream, payload.source,
                                    payload.mbr, payload.batch_seq, now,
                                    payload.expires};
  const bool added = state_of(at).store.add_mbr(entry);
  if (!added && payload.expires > now && metrics_.recording()) {
    ++metrics_.robustness().duplicate_stores;
  }
  if (added) {
    note_node_work(at, 1);
  }
  // Synchronous mirror: the key-range owner (the node covering the hi end)
  // pushes the freshly stored batch to its replica set. First store only —
  // refresh and retry redeliveries dedup above and never re-mirror.
  if (added && replication_on() && msg.has_range &&
      covers_key(at, msg.range_hi)) {
    mirror_mbr(at, entry);
  }
  return added;
}

void MiddlewareSystem::handle_mbr_ack(NodeIndex at, const Message& msg) {
  const auto payload = payload_of<MbrAckPayload>(msg);
  note_mbr_ack(at, payload->stream, payload->batch_seq);
}

void MiddlewareSystem::handle_response_ack(NodeIndex at, const Message& msg) {
  const auto payload = payload_of<ResponseAckPayload>(msg);
  MiddlewareNode& state = state_of(at);
  const auto it = state.aggregations.find(payload->query);
  if (it == state.aggregations.end()) {
    return;
  }
  it->second.inflight.erase(payload->push_seq);
}

void MiddlewareSystem::handle_similarity_query(NodeIndex at,
                                               const Message& msg) {
  const auto payload = payload_of<SimilarityQueryPayload>(msg);
  const SimilarityQuery& query = *payload->query;
  MiddlewareNode& state = state_of(at);
  const bool fresh = state.store.find_subscription(query.id) == nullptr;
  state.store.add_subscription(payload->query, payload->middle_key,
                               query.issued_at + query.lifespan);
  if (fresh) {
    note_node_work(at, 1);
  }
  // Mirror the subscription to the range owner's replica set on first
  // install (refresh redeliveries keep the original state and don't
  // re-mirror).
  if (fresh && replication_on() && msg.has_range &&
      covers_key(at, msg.range_hi)) {
    const IndexStore::Subscription* sub =
        state.store.find_subscription(query.id);
    if (sub != nullptr) {
      mirror_subscription(at, *sub);
    }
  }
  // While this node's arc is split, every new subscription must also reach
  // the delegates holding its diverted MBRs, or their stores would match
  // against a stale subscription set.
  if (fresh && config_.overload.has_value() &&
      !state.overload.split_delegates.empty()) {
    const IndexStore::Subscription* sub =
        state.store.find_subscription(query.id);
    if (sub != nullptr) {
      forward_subscription_to_delegates(at, *sub);
    }
  }
}

void MiddlewareSystem::handle_inner_query(NodeIndex at, const Message& msg) {
  const auto payload = payload_of<InnerProductQueryPayload>(msg);
  const InnerProductQuery& query = *payload->query;
  MiddlewareNode& state = state_of(at);
  const auto it = state.streams.find(query.stream);
  if (it == state.streams.end()) {
    return;  // stale location mapping (stream moved or was dropped)
  }
  it->second.inner_subscriptions.push_back(InnerProductSubscription{
      payload->query, query.issued_at + query.lifespan});
}

void MiddlewareSystem::handle_response(NodeIndex at, const Message& msg) {
  const auto payload = payload_of<ResponsePayload>(msg);
  if (payload->client != at) {
    // The client crashed and its arc changed hands: the response routed to
    // the new owner of the client's ring id. Nothing to do but drop it.
    return;
  }
  if (payload->aggregator != kInvalidNode && !payload->matches.empty()) {
    // Confirm match-bearing pushes even when the query record is gone: the
    // aggregator must stop retransmitting either way.
    Message ack;
    ack.kind = MsgKind::kResponseAck;
    ack.payload = std::make_shared<const ResponseAckPayload>(
        ResponseAckPayload{payload->query, payload->push_seq});
    routing_.send_direct(at, payload->aggregator, std::move(ack));
  }
  const auto it = client_records_.find(payload->query);
  if (it == client_records_.end()) {
    return;
  }
  ClientQueryRecord& record = it->second;
  ++record.responses_received;
  if (!record.first_response_at.has_value()) {
    record.first_response_at = routing_.simulator().now();
  }
  for (const SimilarityMatch& match : payload->matches) {
    // Content-level dedup: retransmitted pushes and doubly-aggregated
    // reports never inflate the match count.
    if (record.matched_streams.insert(match.stream).second) {
      ++record.match_events;
    } else {
      ++record.duplicate_match_events;
      if (metrics_.recording()) {
        ++metrics_.robustness().duplicate_matches;
      }
    }
  }
  if (payload->inner_product) {
    record.last_inner_value = payload->inner_product_value;
    ++record.inner_updates;
  }
}

void MiddlewareSystem::handle_neighbor_digest(NodeIndex at,
                                              const Message& msg) {
  const auto payload = payload_of<NeighborDigestPayload>(msg);
  for (const MatchReport& report : payload->reports) {
    file_match_report(at, report);
  }
}

void MiddlewareSystem::handle_location_put(NodeIndex at, const Message& msg) {
  const auto payload = payload_of<LocationPutPayload>(msg);
  if (payload->source == kInvalidNode) {
    state_of(at).location_directory.erase(payload->stream);  // tombstone
  } else {
    state_of(at).location_directory[payload->stream] = payload->source;
  }
}

void MiddlewareSystem::handle_location_get(NodeIndex at, const Message& msg) {
  const auto payload = payload_of<LocationGetPayload>(msg);
  const auto& directory = state_of(at).location_directory;
  const auto entry = directory.find(payload->stream);
  const NodeIndex source =
      entry == directory.end() ? kInvalidNode : entry->second;

  Message reply;
  reply.kind = MsgKind::kLocationReply;
  reply.payload = std::make_shared<const LocationReplyPayload>(
      LocationReplyPayload{payload->stream, source});
  routing_.send(at, routing_.node_id(payload->requester), std::move(reply));
}

void MiddlewareSystem::retry_location_get(NodeIndex client, StreamId stream) {
  if (!routing_.is_alive(client)) {
    return;  // the querying data center is gone; let its state expire
  }
  MiddlewareNode& state = state_of(client);
  const auto pending = state.pending_inner_queries.find(stream);
  if (pending == state.pending_inner_queries.end()) {
    return;  // resolved or expired in the meantime
  }
  const auto cached = state.location_cache.find(stream);
  if (cached != state.location_cache.end()) {
    state.location_retry_attempts.erase(stream);
    std::vector<std::shared_ptr<const InnerProductQuery>> queries =
        std::move(pending->second);
    state.pending_inner_queries.erase(pending);
    for (auto& query : queries) {
      dispatch_inner_query(client, std::move(query), cached->second);
    }
    return;
  }
  if (metrics_.recording()) {
    ++metrics_.robustness().location_retries;
  }
  Message msg;
  msg.kind = MsgKind::kLocationGet;
  msg.payload = std::make_shared<const LocationGetPayload>(
      LocationGetPayload{stream, client});
  routing_.send(client, mapper_.key_for_stream(stream), std::move(msg));
}

void MiddlewareSystem::handle_location_reply(NodeIndex at,
                                             const Message& msg) {
  const auto payload = payload_of<LocationReplyPayload>(msg);
  MiddlewareNode& state = state_of(at);
  auto pending = state.pending_inner_queries.find(payload->stream);
  if (payload->source == kInvalidNode) {
    // The directory does not know the stream (yet): its registration may
    // still be in flight through the overlay, or the stream is truly gone.
    // Keep the unexpired queries and retry after a notification period; the
    // pending set drains naturally once every query's lifespan passes.
    if (pending == state.pending_inner_queries.end()) {
      return;
    }
    const sim::SimTime now = routing_.simulator().now();
    std::erase_if(pending->second,
                  [now](const std::shared_ptr<const InnerProductQuery>& q) {
                    return q->issued_at + q->lifespan <= now;
                  });
    if (pending->second.empty()) {
      state.pending_inner_queries.erase(pending);
      return;
    }
    // Capped exponential backoff with jitter, not a flat notify_period:
    // repeated unknowns mean the registration is slow or its directory
    // fragment is down, so hammering the same key every period only adds
    // load where the failure is.
    const StreamId stream = payload->stream;
    const int attempts = state.location_retry_attempts[stream]++;
    RetryPolicy policy;
    policy.timeout = config_.notify_period;
    policy.max_backoff =
        sim::Duration::micros(config_.notify_period.count_micros() * 8);
    policy.jitter =
        sim::Duration::micros(config_.notify_period.count_micros() / 8);
    routing_.simulator().schedule_after(
        backoff_delay(policy, attempts),
        [this, at, stream] { retry_location_get(at, stream); });
    return;
  }
  state.location_retry_attempts.erase(payload->stream);
  state.location_cache[payload->stream] = payload->source;
  if (pending == state.pending_inner_queries.end()) {
    return;
  }
  std::vector<std::shared_ptr<const InnerProductQuery>> queries =
      std::move(pending->second);
  state.pending_inner_queries.erase(pending);
  for (auto& query : queries) {
    dispatch_inner_query(at, std::move(query), payload->source);
  }
}

// --- Periodic machinery --------------------------------------------------------

bool MiddlewareSystem::covers_key(NodeIndex node, Key key) const {
  const NodeIndex pred = routing_.predecessor_index(node);
  return routing_.id_space().in_half_open(key, routing_.node_id(pred),
                                          routing_.node_id(node));
}

void MiddlewareSystem::file_match_report(NodeIndex at, MatchReport report) {
  MiddlewareNode& state = state_of(at);
  if (covers_key(at, report.middle_key)) {
    AggregatorRecord& record = state.aggregations[report.match.query];
    record.client = report.client;
    record.middle_key = report.middle_key;
    record.expires = report.query_expires;
    if (record.seen.insert(report.match.stream).second) {
      record.pending.push_back(report.match);
      // Incremental aggregator replication: every freshly filed match is
      // mirrored to the middle key's replica set, so a replica can promote
      // itself without losing any client-visible match.
      if (replication_on()) {
        mirror_aggregation(at, report.match.query, record, report.middle_key,
                           report.match);
      }
    }
    return;
  }
  state.outgoing_reports.push_back(std::move(report));
}

void MiddlewareSystem::periodic_tick(NodeIndex index) {
  if (!routing_.is_alive(index)) {
    return;  // the data center crashed; its soft state dies with it
  }
  const sim::SimTime now = routing_.simulator().now();
  // The match pass touches only this node's store, so it commutes with the
  // bookkeeping steps of dispatch_tick — running it first lets
  // tick_all_nodes hoist all the passes into one sharded pre-pass while
  // this (simulator-driven, one node per event) path shards the pass
  // internally across subscriptions.
  dispatch_tick(index, now, nodes_[index].store.match(now, pool_.get()));
}

void MiddlewareSystem::dispatch_tick(NodeIndex index, sim::SimTime now,
                                     std::vector<SimilarityMatch> fresh) {
  MiddlewareNode& state = nodes_[index];

  // Credit the match pass that just ran for this node: its scan cost plus
  // one unit per fresh candidate. The counter is a sum over subscriptions,
  // so the sharded and serial passes credit the identical amount — hot-arc
  // decisions downstream stay thread-count-invariant.
  note_node_work(index,
                 state.store.last_match_work() +
                     static_cast<std::uint64_t>(fresh.size()));

  // -1. Aggregator failover: mirrors whose middle key now falls on this
  //     node's arc (the owner died) become live aggregations.
  if (!state.aggregation_replicas.empty()) {
    promote_aggregation_replicas(index, now);
  }

  // 0. Drop publication records whose batch lapsed (acked entries have no
  //    timer left to prune them otherwise).
  for (auto it = state.published_mbrs.begin();
       it != state.published_mbrs.end();) {
    if (it->second.payload->expires <= now) {
      it->second.retry_timer.cancel();
      it = state.published_mbrs.erase(it);
    } else {
      ++it;
    }
  }

  // 1. File the candidates the match pass detected against the local index
  //    (Eq. 8 / MBR bound). match() advanced the store's expiry lanes
  //    itself, so no separate expire() sweep is needed here.
  for (SimilarityMatch& match : fresh) {
    const IndexStore::Subscription* sub =
        state.store.find_subscription(match.query);
    SDSI_CHECK(sub != nullptr);
    file_match_report(index,
                      MatchReport{std::move(match), sub->query->client,
                                  sub->middle_key, sub->expires});
  }

  // 2. Relay buffered reports one ring hop toward their middle nodes, as a
  //    single aggregated digest per direction (the paper's constant
  //    per-node neighbor-exchange component).
  if (!state.outgoing_reports.empty()) {
    std::vector<MatchReport> up;
    std::vector<MatchReport> down;
    const Key self_id = routing_.node_id(index);
    for (MatchReport& report : state.outgoing_reports) {
      if (report.query_expires <= now) {
        continue;  // stale: the query is gone, stop circulating it
      }
      const Key middle = report.middle_key;
      const bool shorter_up = routing_.id_space().distance(self_id, middle) <=
                              routing_.id_space().distance(middle, self_id);
      (shorter_up ? up : down).push_back(std::move(report));
    }
    state.outgoing_reports.clear();
    if (!up.empty()) {
      Message msg;
      msg.kind = MsgKind::kNeighborExchange;
      msg.payload = std::make_shared<const NeighborDigestPayload>(
          NeighborDigestPayload{std::move(up)});
      // A neighbor that died since the last stabilization round must not
      // swallow the digest: detour around it via the successor list instead
      // of dropping the reports on the floor.
      msg.reroute_on_dead = true;
      routing_.send_direct(index, routing_.successor_index(index),
                           std::move(msg));
    }
    if (!down.empty()) {
      Message msg;
      msg.kind = MsgKind::kNeighborExchange;
      msg.payload = std::make_shared<const NeighborDigestPayload>(
          NeighborDigestPayload{std::move(down)});
      msg.reroute_on_dead = true;
      routing_.send_direct(index, routing_.predecessor_index(index),
                           std::move(msg));
    }
  }

  // 3. Aggregators push periodic responses to their clients (Sec IV-F).
  //    With response acks enabled, match-bearing pushes stay in an in-flight
  //    window until the client confirms them; unacked pushes retransmit
  //    verbatim (same push_seq — the client's content dedup makes
  //    redelivery harmless) under the response_ack policy.
  for (auto it = state.aggregations.begin(); it != state.aggregations.end();) {
    AggregatorRecord& record = it->second;
    if (record.expires <= now) {
      it = state.aggregations.erase(it);
      continue;
    }
    const QueryId query_id = it->first;
    if (config_.response_ack.enabled) {
      for (auto push = record.inflight.begin();
           push != record.inflight.end();) {
        AggregatorRecord::InflightPush& inflight = push->second;
        if (now - inflight.sent_at < config_.response_ack.timeout) {
          ++push;
          continue;
        }
        if (inflight.attempts >= config_.response_ack.max_attempts) {
          push = record.inflight.erase(push);  // budget spent
          continue;
        }
        ++inflight.attempts;
        inflight.sent_at = now;
        if (metrics_.recording()) {
          ++metrics_.robustness().response_retries;
        }
        Message resend;
        resend.kind = MsgKind::kResponse;
        resend.payload = std::make_shared<const ResponsePayload>(
            ResponsePayload{query_id, record.client, false, inflight.matches,
                            0.0, index, push->first});
        routing_.send(index, routing_.node_id(record.client),
                      std::move(resend));
        ++push;
      }
    }
    const bool track = config_.response_ack.enabled && !record.pending.empty();
    const std::uint64_t seq = track ? record.next_push_seq++ : 0;
    std::vector<SimilarityMatch> matches = std::move(record.pending);
    record.pending.clear();
    if (track) {
      record.inflight.emplace(
          seq, AggregatorRecord::InflightPush{matches, now, 0});
    }
    Message msg;
    msg.kind = MsgKind::kResponse;
    msg.payload = std::make_shared<const ResponsePayload>(ResponsePayload{
        query_id, record.client, false, std::move(matches), 0.0,
        config_.response_ack.enabled ? index : kInvalidNode, seq});
    ++record.pushes;
    routing_.send(index, routing_.node_id(record.client), std::move(msg));
    ++it;
  }

  // 4. Answer inner-product subscriptions from the local synopses
  //    (Eq. 7 reconstruction + weighted product, Sec IV-D).
  for (auto& [stream_id, local] : state.streams) {
    std::erase_if(local.inner_subscriptions,
                  [now](const InnerProductSubscription& sub) {
                    return sub.expires <= now;
                  });
    if (local.inner_subscriptions.empty()) {
      continue;
    }
    // Strategy-owned window approximation on the raw data scale: the dft
    // strategy reconstructs via Eq. 7 and undoes the normalization (the
    // synopsis-owning node knows the window mean and norm); ecm answers
    // from its exact raw ring.
    std::vector<Sample> approx;
    if (!local.summarizer->approx_window(approx)) {
      continue;
    }
    for (const InnerProductSubscription& sub : local.inner_subscriptions) {
      const double value = dsp::weighted_inner_product(
          approx, sub.query->index, sub.query->weights);
      Message msg;
      msg.kind = MsgKind::kResponse;
      msg.payload = std::make_shared<const ResponsePayload>(ResponsePayload{
          sub.query->id, sub.query->client, true, {}, value});
      routing_.send(index, routing_.node_id(sub.query->client),
                    std::move(msg));
    }
  }
}

// --- Replication & failover ---------------------------------------------------

namespace {

/// Whether the closed key interval [mlo, mhi] intersects the half-open ring
/// arc (lo, hi]: an interval endpoint falls inside the arc, or the interval
/// swallows the arc whole (then it contains hi).
bool range_intersects_arc(const common::IdSpace& space, Key mlo, Key mhi,
                          Key lo, Key hi) {
  return space.in_half_open(mlo, lo, hi) || space.in_half_open(mhi, lo, hi) ||
         space.in_closed(hi, mlo, mhi);
}

}  // namespace

std::size_t MiddlewareSystem::mbr_entry_bytes(
    const IndexStore::StoredMbr& entry) {
  // Identity + expiry header, plus two doubles per MBR dimension.
  return 40 + entry.mbr.dimensions() * 16;
}

std::size_t MiddlewareSystem::subscription_entry_bytes(
    const IndexStore::Subscription& sub) {
  // Query header, plus one complex coefficient per feature dimension.
  return 48 + sub.query->features.size() * 16;
}

void MiddlewareSystem::emit_replication_trace(obs::TraceEventKind event,
                                              NodeIndex node, StreamId stream,
                                              std::uint64_t seq) {
  obs::TraceSink* sink = routing_.trace_sink();
  if (sink == nullptr) {
    return;
  }
  obs::TraceRecord record;
  record.event = event;
  record.at_us = routing_.simulator().now().count_micros();
  record.node = node;
  record.stream = stream;
  record.batch_seq = seq;
  sink->record(record);
}

void MiddlewareSystem::mirror_mbr(NodeIndex at,
                                  const IndexStore::StoredMbr& entry) {
  const std::vector<NodeIndex> replicas =
      routing_.successors(at, config_.replication_factor);
  if (replicas.empty()) {
    return;
  }
  const auto payload = std::make_shared<const ReplicaPutPayload>(
      ReplicaPutPayload{at,
                        {ReplicaMbrEntry{entry.stream, entry.source, entry.mbr,
                                         entry.batch_seq, entry.expires}},
                        {},
                        false,
                        false});
  for (const NodeIndex replica : replicas) {
    Message msg;
    msg.kind = MsgKind::kReplicaPut;
    msg.payload = payload;
    msg.reroute_on_dead = true;
    routing_.send_direct(at, replica, std::move(msg));
    if (metrics_.recording()) {
      ++metrics_.robustness().replica_puts;
    }
    if (metrics_.registry() != nullptr) {
      metrics_.registry()->counter("replication.puts").add();
    }
  }
  emit_replication_trace(obs::TraceEventKind::kReplicate, at, entry.stream,
                         entry.batch_seq);
}

void MiddlewareSystem::mirror_subscription(
    NodeIndex at, const IndexStore::Subscription& sub) {
  const std::vector<NodeIndex> replicas =
      routing_.successors(at, config_.replication_factor);
  if (replicas.empty()) {
    return;
  }
  const auto payload = std::make_shared<const ReplicaPutPayload>(
      ReplicaPutPayload{
          at,
          {},
          {ReplicaSubscriptionEntry{sub.query, sub.middle_key, sub.expires}},
          false,
          false});
  for (const NodeIndex replica : replicas) {
    Message msg;
    msg.kind = MsgKind::kReplicaPut;
    msg.payload = payload;
    msg.reroute_on_dead = true;
    routing_.send_direct(at, replica, std::move(msg));
    if (metrics_.recording()) {
      ++metrics_.robustness().replica_puts;
    }
    if (metrics_.registry() != nullptr) {
      metrics_.registry()->counter("replication.puts").add();
    }
  }
  emit_replication_trace(obs::TraceEventKind::kReplicate, at, 0,
                         sub.query->id);
}

void MiddlewareSystem::mirror_aggregation(NodeIndex at, QueryId query,
                                          const AggregatorRecord& record,
                                          Key middle_key,
                                          const SimilarityMatch& match) {
  const std::vector<NodeIndex> replicas =
      routing_.successors(at, config_.replication_factor);
  if (replicas.empty()) {
    return;
  }
  const auto payload = std::make_shared<const AggregatorReplicaPayload>(
      AggregatorReplicaPayload{query, record.client, middle_key,
                               record.expires, at, {match}});
  for (const NodeIndex replica : replicas) {
    Message msg;
    msg.kind = MsgKind::kAggregatorReplica;
    msg.payload = payload;
    msg.reroute_on_dead = true;
    routing_.send_direct(at, replica, std::move(msg));
  }
}

void MiddlewareSystem::handle_replica_put(NodeIndex at, const Message& msg) {
  const auto payload = payload_of<ReplicaPutPayload>(msg);
  const sim::SimTime now = routing_.simulator().now();
  MiddlewareNode& state = state_of(at);
  std::size_t added = 0;
  StreamId first_stream = 0;
  std::uint64_t first_seq = 0;
  for (const ReplicaMbrEntry& entry : payload->mbrs) {
    if (state.store.add_mbr(IndexStore::StoredMbr{entry.stream, entry.source,
                                                  entry.mbr, entry.batch_seq,
                                                  now, entry.expires})) {
      if (added == 0) {
        first_stream = entry.stream;
        first_seq = entry.batch_seq;
      }
      ++added;
    }
  }
  for (const ReplicaSubscriptionEntry& entry : payload->subscriptions) {
    if (entry.query == nullptr || entry.expires <= now) {
      continue;
    }
    if (state.store.find_subscription(entry.query->id) == nullptr) {
      ++added;
    }
    state.store.add_subscription(entry.query, entry.middle_key,
                                 entry.expires);
  }
  if (added == 0) {
    return;  // everything deduplicated: redelivery is a no-op by design
  }
  note_node_work(at, added);
  if (payload->repair) {
    if (metrics_.recording()) {
      metrics_.robustness().replica_repairs += added;
    }
    if (metrics_.registry() != nullptr) {
      metrics_.registry()->counter("replication.repairs").add(
          static_cast<double>(added));
    }
    emit_replication_trace(obs::TraceEventKind::kRepair, at, first_stream,
                           first_seq);
  } else if (payload->handoff) {
    emit_replication_trace(obs::TraceEventKind::kHandoff, at, first_stream,
                           first_seq);
  }
}

void MiddlewareSystem::handle_handoff_request(NodeIndex at,
                                              const Message& msg) {
  const auto payload = payload_of<HandoffRequestPayload>(msg);
  if (!routing_.is_alive(payload->requester)) {
    return;
  }
  const sim::SimTime now = routing_.simulator().now();
  MiddlewareNode& state = state_of(at);
  state.store.expire(now);
  const common::IdSpace& space = routing_.id_space();

  std::vector<ReplicaMbrEntry> mbrs;
  std::size_t bytes = 0;
  for (const IndexStore::StoredMbr& entry : state.store.mbrs()) {
    const auto [mlo, mhi] = strategy_->key_map().mbr_range(entry.mbr);
    if (!range_intersects_arc(space, mlo, mhi, payload->lo, payload->hi)) {
      continue;
    }
    mbrs.push_back(ReplicaMbrEntry{entry.stream, entry.source, entry.mbr,
                                   entry.batch_seq, entry.expires});
    bytes += mbr_entry_bytes(entry);
  }
  std::vector<ReplicaSubscriptionEntry> subs;
  for (const auto& [id, sub] : state.store.subscriptions()) {
    (void)id;
    if (sub.expires <= now) {
      continue;
    }
    const auto [qlo, qhi] =
        strategy_->key_map().query_range(sub.query->features,
                                         sub.query->radius);
    if (!range_intersects_arc(space, qlo, qhi, payload->lo, payload->hi)) {
      continue;
    }
    subs.push_back(
        ReplicaSubscriptionEntry{sub.query, sub.middle_key, sub.expires});
    bytes += subscription_entry_bytes(sub);
  }
  // Canonical ascending-id order: payload contents must not depend on the
  // store's (history-dependent) iteration order.
  std::sort(subs.begin(), subs.end(),
            [](const ReplicaSubscriptionEntry& a,
               const ReplicaSubscriptionEntry& b) {
              return a.query->id < b.query->id;
            });
  if (mbrs.empty() && subs.empty()) {
    return;
  }
  const std::size_t entries = mbrs.size() + subs.size();
  Message reply;
  reply.kind = MsgKind::kReplicaPut;
  reply.payload = std::make_shared<const ReplicaPutPayload>(ReplicaPutPayload{
      at, std::move(mbrs), std::move(subs), true, false});
  reply.reroute_on_dead = true;
  routing_.send_direct(at, payload->requester, std::move(reply));
  if (metrics_.recording()) {
    metrics_.robustness().handoff_entries += entries;
    metrics_.robustness().handoff_bytes += bytes;
  }
  if (metrics_.registry() != nullptr) {
    metrics_.registry()
        ->counter("replication.handoff_entries")
        .add(static_cast<double>(entries));
    metrics_.registry()
        ->counter("replication.handoff_bytes")
        .add(static_cast<double>(bytes));
  }
  emit_replication_trace(obs::TraceEventKind::kHandoff, at, 0, entries);
}

void MiddlewareSystem::schedule_anti_entropy(NodeIndex index,
                                             sim::Duration offset) {
  sim::Simulator& sim = routing_.simulator();
  sim.schedule_periodic(sim.now() + offset + config_.anti_entropy_period,
                        config_.anti_entropy_period,
                        [this, index] { anti_entropy_tick(index); });
}

void MiddlewareSystem::anti_entropy_tick(NodeIndex index) {
  if (!routing_.is_alive(index)) {
    return;
  }
  const std::vector<NodeIndex> replicas =
      routing_.successors(index, config_.replication_factor);
  if (replicas.empty()) {
    return;
  }
  const sim::SimTime now = routing_.simulator().now();
  MiddlewareNode& state = nodes_[index];
  state.store.expire(now);
  const common::IdSpace& space = routing_.id_space();
  const Key self_id = routing_.node_id(index);
  const Key pred_id = routing_.node_id(routing_.predecessor_index(index));

  // Digest of the OWNED arc only: replicas answer for what they mirror, the
  // owner answers for what it owns. An empty digest is still sent — it is
  // exactly how a recovered-empty owner learns what it lost (the peers push
  // the gap back as repair).
  std::vector<MbrBatchId> mbr_keys;
  for (const IndexStore::StoredMbr& entry : state.store.mbrs()) {
    const auto [mlo, mhi] = strategy_->key_map().mbr_range(entry.mbr);
    if (range_intersects_arc(space, mlo, mhi, pred_id, self_id)) {
      mbr_keys.push_back(MbrBatchId{entry.stream, entry.batch_seq});
    }
  }
  std::vector<QueryId> query_ids;
  for (const auto& [id, sub] : state.store.subscriptions()) {
    if (sub.expires <= now) {
      continue;
    }
    const auto [qlo, qhi] =
        strategy_->key_map().query_range(sub.query->features,
                                         sub.query->radius);
    if (range_intersects_arc(space, qlo, qhi, pred_id, self_id)) {
      query_ids.push_back(id);
    }
  }
  std::sort(query_ids.begin(), query_ids.end());
  const auto payload = std::make_shared<const AntiEntropyDigestPayload>(
      AntiEntropyDigestPayload{index, pred_id, self_id, std::move(mbr_keys),
                               std::move(query_ids)});
  for (const NodeIndex replica : replicas) {
    Message msg;
    msg.kind = MsgKind::kAntiEntropyDigest;
    msg.payload = payload;
    msg.reroute_on_dead = true;
    routing_.send_direct(index, replica, std::move(msg));
  }
}

void MiddlewareSystem::handle_anti_entropy_digest(NodeIndex at,
                                                  const Message& msg) {
  const auto payload = payload_of<AntiEntropyDigestPayload>(msg);
  if (!routing_.is_alive(payload->from)) {
    return;
  }
  const sim::SimTime now = routing_.simulator().now();
  MiddlewareNode& state = state_of(at);
  state.store.expire(now);

  // 1. What the owner holds that this replica misses: request backfill.
  std::vector<MbrBatchId> want_mbrs;
  for (const MbrBatchId& key : payload->mbr_keys) {
    if (!state.store.contains_mbr(key.stream, key.batch_seq)) {
      want_mbrs.push_back(key);
    }
  }
  std::vector<QueryId> want_queries;
  for (const QueryId id : payload->query_ids) {
    if (state.store.find_subscription(id) == nullptr) {
      want_queries.push_back(id);
    }
  }
  if (!want_mbrs.empty() || !want_queries.empty()) {
    Message req;
    req.kind = MsgKind::kAntiEntropyRequest;
    req.payload = std::make_shared<const AntiEntropyRequestPayload>(
        AntiEntropyRequestPayload{at, std::move(want_mbrs),
                                  std::move(want_queries)});
    req.reroute_on_dead = true;
    routing_.send_direct(at, payload->from, std::move(req));
  }

  // 2. What this replica holds on the owner's arc that the digest lacks:
  //    push it back as repair (heals an owner that recovered empty).
  std::set<std::pair<StreamId, std::uint64_t>> digest_mbrs;
  for (const MbrBatchId& key : payload->mbr_keys) {
    digest_mbrs.emplace(key.stream, key.batch_seq);
  }
  std::unordered_set<QueryId> digest_queries(payload->query_ids.begin(),
                                             payload->query_ids.end());
  const common::IdSpace& space = routing_.id_space();
  std::vector<ReplicaMbrEntry> push_mbrs;
  for (const IndexStore::StoredMbr& entry : state.store.mbrs()) {
    if (digest_mbrs.contains({entry.stream, entry.batch_seq})) {
      continue;
    }
    const auto [mlo, mhi] = strategy_->key_map().mbr_range(entry.mbr);
    if (!range_intersects_arc(space, mlo, mhi, payload->lo, payload->hi)) {
      continue;
    }
    push_mbrs.push_back(ReplicaMbrEntry{entry.stream, entry.source, entry.mbr,
                                        entry.batch_seq, entry.expires});
  }
  std::vector<ReplicaSubscriptionEntry> push_subs;
  for (const auto& [id, sub] : state.store.subscriptions()) {
    if (digest_queries.contains(id) || sub.expires <= now) {
      continue;
    }
    const auto [qlo, qhi] =
        strategy_->key_map().query_range(sub.query->features,
                                         sub.query->radius);
    if (!range_intersects_arc(space, qlo, qhi, payload->lo, payload->hi)) {
      continue;
    }
    push_subs.push_back(
        ReplicaSubscriptionEntry{sub.query, sub.middle_key, sub.expires});
  }
  std::sort(push_subs.begin(), push_subs.end(),
            [](const ReplicaSubscriptionEntry& a,
               const ReplicaSubscriptionEntry& b) {
              return a.query->id < b.query->id;
            });
  if (push_mbrs.empty() && push_subs.empty()) {
    return;
  }
  Message back;
  back.kind = MsgKind::kReplicaPut;
  back.payload = std::make_shared<const ReplicaPutPayload>(ReplicaPutPayload{
      at, std::move(push_mbrs), std::move(push_subs), false, true});
  back.reroute_on_dead = true;
  routing_.send_direct(at, payload->from, std::move(back));
}

void MiddlewareSystem::handle_anti_entropy_request(NodeIndex at,
                                                   const Message& msg) {
  const auto payload = payload_of<AntiEntropyRequestPayload>(msg);
  if (!routing_.is_alive(payload->requester)) {
    return;
  }
  const sim::SimTime now = routing_.simulator().now();
  MiddlewareNode& state = state_of(at);
  std::vector<ReplicaMbrEntry> mbrs;
  for (const MbrBatchId& key : payload->mbr_keys) {
    const IndexStore::StoredMbr* entry =
        state.store.find_mbr(key.stream, key.batch_seq);
    if (entry != nullptr) {
      mbrs.push_back(ReplicaMbrEntry{entry->stream, entry->source, entry->mbr,
                                     entry->batch_seq, entry->expires});
    }
  }
  std::vector<ReplicaSubscriptionEntry> subs;
  for (const QueryId id : payload->query_ids) {
    const IndexStore::Subscription* sub = state.store.find_subscription(id);
    if (sub != nullptr && sub->expires > now) {
      subs.push_back(
          ReplicaSubscriptionEntry{sub->query, sub->middle_key, sub->expires});
    }
  }
  if (mbrs.empty() && subs.empty()) {
    return;
  }
  Message reply;
  reply.kind = MsgKind::kReplicaPut;
  reply.payload = std::make_shared<const ReplicaPutPayload>(ReplicaPutPayload{
      at, std::move(mbrs), std::move(subs), false, true});
  reply.reroute_on_dead = true;
  routing_.send_direct(at, payload->requester, std::move(reply));
}

void MiddlewareSystem::handle_aggregator_replica(NodeIndex at,
                                                 const Message& msg) {
  const auto payload = payload_of<AggregatorReplicaPayload>(msg);
  const sim::SimTime now = routing_.simulator().now();
  if (payload->expires <= now) {
    return;
  }
  MiddlewareNode& state = state_of(at);
  AggregationReplica& rep = state.aggregation_replicas[payload->query];
  rep.client = payload->client;
  rep.middle_key = payload->middle_key;
  rep.expires = payload->expires;
  for (const SimilarityMatch& match : payload->matches) {
    if (rep.seen.insert(match.stream).second) {
      rep.matches.push_back(match);
    }
  }
  rep.last_update = now;
}

void MiddlewareSystem::promote_aggregation_replicas(NodeIndex index,
                                                    sim::SimTime now) {
  MiddlewareNode& state = nodes_[index];
  for (auto it = state.aggregation_replicas.begin();
       it != state.aggregation_replicas.end();) {
    AggregationReplica& rep = it->second;
    if (rep.expires <= now) {
      it = state.aggregation_replicas.erase(it);
      continue;
    }
    // While the aggregator lives it covers its own middle key, so this is
    // false; once it dies and stabilization hands its arc to this node, the
    // mirror promotes.
    if (!covers_key(index, rep.middle_key)) {
      ++it;
      continue;
    }
    const QueryId query = it->first;
    AggregatorRecord& record = state.aggregations[query];
    record.client = rep.client;
    record.middle_key = rep.middle_key;
    record.expires = rep.expires;
    for (const SimilarityMatch& match : rep.matches) {
      if (record.seen.insert(match.stream).second) {
        record.pending.push_back(match);
      }
    }
    const double dark_ms = (now - rep.last_update).as_millis();
    if (metrics_.recording()) {
      ++metrics_.robustness().aggregator_failovers;
      metrics_.robustness().failover_latency_ms.add(dark_ms);
    }
    if (metrics_.registry() != nullptr) {
      metrics_.registry()->counter("failover.promotions").add();
      metrics_.registry()->histogram("failover.latency_ms").add(dark_ms);
    }
    emit_replication_trace(obs::TraceEventKind::kFailover, index, 0, query);
    it = state.aggregation_replicas.erase(it);
  }
}

void MiddlewareSystem::handle_node_join(NodeIndex index) {
  if (!replication_on()) {
    return;
  }
  (void)state_of(index);
  if (!routing_.is_alive(index)) {
    return;
  }
  const NodeIndex succ = routing_.successor_index(index);
  if (succ == index) {
    return;  // alone on the ring: nothing to pull
  }
  Message msg;
  msg.kind = MsgKind::kHandoffRequest;
  msg.payload = std::make_shared<const HandoffRequestPayload>(
      HandoffRequestPayload{
          index, routing_.node_id(routing_.predecessor_index(index)),
          routing_.node_id(index)});
  msg.reroute_on_dead = true;
  routing_.send_direct(index, succ, std::move(msg));
  emit_replication_trace(obs::TraceEventKind::kHandoff, index, 0, 0);
}

void MiddlewareSystem::handle_node_leave(NodeIndex index) {
  if (!replication_on() || index >= nodes_.size() ||
      !routing_.is_alive(index)) {
    return;
  }
  const NodeIndex succ = routing_.successor_index(index);
  if (succ == index) {
    return;
  }
  const sim::SimTime now = routing_.simulator().now();
  MiddlewareNode& state = nodes_[index];
  state.store.expire(now);

  std::vector<ReplicaMbrEntry> mbrs;
  std::size_t bytes = 0;
  for (const IndexStore::StoredMbr& entry : state.store.mbrs()) {
    mbrs.push_back(ReplicaMbrEntry{entry.stream, entry.source, entry.mbr,
                                   entry.batch_seq, entry.expires});
    bytes += mbr_entry_bytes(entry);
  }
  std::vector<ReplicaSubscriptionEntry> subs;
  for (const auto& [id, sub] : state.store.subscriptions()) {
    (void)id;
    if (sub.expires <= now) {
      continue;
    }
    subs.push_back(
        ReplicaSubscriptionEntry{sub.query, sub.middle_key, sub.expires});
    bytes += subscription_entry_bytes(sub);
  }
  std::sort(subs.begin(), subs.end(),
            [](const ReplicaSubscriptionEntry& a,
               const ReplicaSubscriptionEntry& b) {
              return a.query->id < b.query->id;
            });
  if (!mbrs.empty() || !subs.empty()) {
    const std::size_t entries = mbrs.size() + subs.size();
    Message push;
    push.kind = MsgKind::kReplicaPut;
    push.payload = std::make_shared<const ReplicaPutPayload>(ReplicaPutPayload{
        index, std::move(mbrs), std::move(subs), true, false});
    push.reroute_on_dead = true;
    routing_.send_direct(index, succ, std::move(push));
    if (metrics_.recording()) {
      metrics_.robustness().handoff_entries += entries;
      metrics_.robustness().handoff_bytes += bytes;
    }
    if (metrics_.registry() != nullptr) {
      metrics_.registry()
          ->counter("replication.handoff_entries")
          .add(static_cast<double>(entries));
      metrics_.registry()
          ->counter("replication.handoff_bytes")
          .add(static_cast<double>(bytes));
    }
    emit_replication_trace(obs::TraceEventKind::kHandoff, index, 0, entries);
  }

  // Partial aggregations travel as aggregator mirrors: the successor holds
  // them as replicas and promotes once the arc changes hands. Acked matches
  // are already client-visible; pending + unacked in-flight cover the rest.
  std::vector<QueryId> mirror_order;
  mirror_order.reserve(state.aggregations.size());
  for (const auto& [query, record] : state.aggregations) {
    (void)record;
    mirror_order.push_back(query);
  }
  std::sort(mirror_order.begin(), mirror_order.end());
  for (const QueryId query : mirror_order) {
    const AggregatorRecord& record = state.aggregations.at(query);
    if (record.expires <= now) {
      continue;
    }
    std::vector<SimilarityMatch> matches = record.pending;
    for (const auto& [seq, push] : record.inflight) {
      (void)seq;
      matches.insert(matches.end(), push.matches.begin(), push.matches.end());
    }
    Message msg;
    msg.kind = MsgKind::kAggregatorReplica;
    msg.payload = std::make_shared<const AggregatorReplicaPayload>(
        AggregatorReplicaPayload{query, record.client, record.middle_key,
                                 record.expires, index, std::move(matches)});
    msg.reroute_on_dead = true;
    routing_.send_direct(index, succ, std::move(msg));
  }
}

void MiddlewareSystem::tick_all_nodes() {
  if (pool_ != nullptr && nodes_.size() > 1) {
    // Sharded pre-pass: every alive node's match pass is independent (it
    // reads and writes only that node's store; cross-node effects travel
    // exclusively through simulator-queued messages, which cannot fire
    // mid-pass). The barrier at the end of the pre-pass, plus the serial
    // node-ordered dispatch phase, keeps the message sequence — and thus
    // the whole simulation — byte-identical to the serial loop. The pool
    // must not be re-entered from inside a task, so each node's pass runs
    // serially here; node-level parallelism already uses every lane.
    const sim::SimTime now = routing_.simulator().now();
    std::vector<std::vector<SimilarityMatch>> fresh(nodes_.size());
    pool_->parallel_for(nodes_.size(), [&](std::size_t i) {
      if (routing_.is_alive(static_cast<NodeIndex>(i))) {
        fresh[i] = nodes_[i].store.match(now);
      }
    });
    for (NodeIndex i = 0; i < nodes_.size(); ++i) {
      if (routing_.is_alive(i)) {
        dispatch_tick(i, now, std::move(fresh[i]));
      }
    }
    return;
  }
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    periodic_tick(i);
  }
}

const ClientQueryRecord* MiddlewareSystem::client_record(QueryId id) const {
  const auto it = client_records_.find(id);
  return it == client_records_.end() ? nullptr : &it->second;
}

// --- Overload control --------------------------------------------------------

void MiddlewareSystem::note_node_work(NodeIndex node, std::uint64_t units) {
  if (units == 0) {
    return;
  }
  // The window counter feeds hot-arc detection and must run whenever the
  // overload layer is on — including warmup, when metrics are disabled.
  if (config_.overload.has_value() && node < nodes_.size()) {
    nodes_[node].overload.window_work += units;
  }
  metrics_.add_node_work(node, units);
}

bool MiddlewareSystem::shed_ingest(NodeIndex at, const Message& msg) {
  const OverloadOptions& opt = *config_.overload;
  MiddlewareNode::OverloadState& ov = state_of(at).overload;
  bool shed = false;
  if (opt.forced_shed_rate > 0.0) {
    // Deterministic fractional accumulator (no rng draw: the shed schedule
    // must be a pure function of the delivery sequence).
    ov.shed_accumulator += opt.forced_shed_rate;
    if (ov.shed_accumulator >= 1.0) {
      ov.shed_accumulator -= 1.0;
      shed = true;
    }
  }
  if (!shed && opt.ingest_capacity > 0 &&
      ov.window_ingest >= opt.ingest_capacity) {
    shed = true;
  }
  if (!shed) {
    ++ov.window_ingest;
    return false;
  }
  routing_.account_app_drop(fault::DropCause::kShedOverload, msg);
  if (metrics_.recording()) {
    ++metrics_.robustness().shed_mbrs;
  }
  if (metrics_.registry() != nullptr) {
    metrics_.registry()->counter("overload.shed_mbrs").add();
  }
  return true;
}

NodeIndex MiddlewareSystem::divert_target(const MiddlewareNode& state,
                                          StreamId stream,
                                          std::uint64_t batch_seq) const {
  const std::vector<NodeIndex>& delegates = state.overload.split_delegates;
  // Same mix as IndexStore::MbrKeyHash: the batch identity picks one owner
  // out of {self, delegates...} uniformly, and redeliveries (retries,
  // refreshes) of the same batch always pick the same owner — so the
  // idempotent dedup still works after a split.
  std::uint64_t h = stream * 0x9E3779B97F4A7C15ull;
  h ^= batch_seq + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  const std::uint64_t owner = h % (1 + delegates.size());
  return owner == 0 ? kInvalidNode : delegates[owner - 1];
}

void MiddlewareSystem::divert_store(NodeIndex at, NodeIndex target,
                                    const IndexStore::StoredMbr& entry) {
  const auto payload = std::make_shared<const ReplicaPutPayload>(
      ReplicaPutPayload{at,
                        {ReplicaMbrEntry{entry.stream, entry.source, entry.mbr,
                                         entry.batch_seq, entry.expires}},
                        {},
                        false,
                        false});
  Message msg;
  msg.kind = MsgKind::kReplicaPut;
  msg.payload = payload;
  msg.reroute_on_dead = true;
  routing_.send_direct(at, target, std::move(msg));
  if (metrics_.recording()) {
    ++metrics_.robustness().split_diverted_stores;
  }
  if (metrics_.registry() != nullptr) {
    metrics_.registry()->counter("overload.diverted_stores").add();
  }
}

void MiddlewareSystem::mirror_subscriptions_to_delegates(NodeIndex node) {
  MiddlewareNode& state = nodes_[node];
  const std::vector<NodeIndex>& delegates = state.overload.split_delegates;
  if (delegates.empty() || state.store.subscription_count() == 0) {
    return;
  }
  const sim::SimTime now = routing_.simulator().now();
  // Canonical ascending-id order (like the handoff path): the delegate's
  // store contents must not depend on this node's container history.
  std::vector<std::pair<QueryId, const IndexStore::Subscription*>> order;
  order.reserve(state.store.subscription_count());
  for (const auto& entry : state.store.subscriptions()) {
    if (entry.second.expires > now) {
      order.emplace_back(entry.first, &entry.second);
    }
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<ReplicaSubscriptionEntry> entries;
  entries.reserve(order.size());
  for (const auto& [id, sub] : order) {
    entries.push_back(
        ReplicaSubscriptionEntry{sub->query, sub->middle_key, sub->expires});
  }
  if (entries.empty()) {
    return;
  }
  const auto payload = std::make_shared<const ReplicaPutPayload>(
      ReplicaPutPayload{node, {}, std::move(entries), false, false});
  for (const NodeIndex delegate : delegates) {
    Message msg;
    msg.kind = MsgKind::kReplicaPut;
    msg.payload = payload;
    msg.reroute_on_dead = true;
    routing_.send_direct(node, delegate, std::move(msg));
  }
}

void MiddlewareSystem::forward_subscription_to_delegates(
    NodeIndex node, const IndexStore::Subscription& sub) {
  const auto payload = std::make_shared<const ReplicaPutPayload>(
      ReplicaPutPayload{
          node,
          {},
          {ReplicaSubscriptionEntry{sub.query, sub.middle_key, sub.expires}},
          false,
          false});
  for (const NodeIndex delegate : nodes_[node].overload.split_delegates) {
    Message msg;
    msg.kind = MsgKind::kReplicaPut;
    msg.payload = payload;
    msg.reroute_on_dead = true;
    routing_.send_direct(node, delegate, std::move(msg));
  }
}

void MiddlewareSystem::defer_publication(NodeIndex source, StreamId stream,
                                         dsp::Mbr mbr) {
  const OverloadOptions& opt = *config_.overload;
  MiddlewareNode::OverloadState& ov = nodes_[source].overload;
  ov.deferred.push_back(DeferredPublication{stream, std::move(mbr)});
  if (metrics_.recording()) {
    ++metrics_.robustness().backpressure_deferrals;
  }
  if (metrics_.registry() != nullptr) {
    metrics_.registry()->counter("overload.backpressure_deferrals").add();
  }
  if (opt.defer_capacity > 0 && ov.deferred.size() > opt.defer_capacity) {
    // Queue overflow sheds the OLDEST deferred batch: its summary data is
    // the stalest, and FIFO draining means it would also be the last to
    // benefit from a budget refill. Never silent.
    ov.deferred.pop_front();
    account_overload_drop(fault::DropCause::kBackpressure, source);
    if (metrics_.recording()) {
      ++metrics_.robustness().backpressure_drops;
    }
  }
}

void MiddlewareSystem::overload_tick() {
  const OverloadOptions& opt = *config_.overload;
  hot_arc_.ensure_nodes(nodes_.size());

  // Harvest + reset the window counters. Dead nodes report zero: they do no
  // work, and their stale counters must not distort the ring median.
  std::vector<std::uint64_t> work(nodes_.size(), 0);
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    MiddlewareNode::OverloadState& ov = nodes_[i].overload;
    if (routing_.is_alive(i)) {
      work[i] = ov.window_work;
    }
    ov.window_work = 0;
    ov.window_ingest = 0;
  }

  const HotArcDetector::Transitions transitions = hot_arc_.observe(work);
  for (const std::size_t node : transitions.split) {
    const auto index = static_cast<NodeIndex>(node);
    MiddlewareNode::OverloadState& ov = nodes_[index].overload;
    if (opt.split_ways > 1) {
      ov.split_delegates = routing_.successors(index, opt.split_ways - 1);
    }
    if (!ov.split_delegates.empty()) {
      // Delegates must hold this node's live subscriptions before any
      // diverted MBR lands, or diverted batches would match nothing there.
      mirror_subscriptions_to_delegates(index);
    }
    if (metrics_.recording()) {
      ++metrics_.robustness().hot_arc_splits;
    }
    if (metrics_.registry() != nullptr) {
      metrics_.registry()->counter("overload.splits").add();
    }
  }
  for (const std::size_t node : transitions.merge) {
    nodes_[node].overload.split_delegates.clear();
    if (metrics_.recording()) {
      ++metrics_.robustness().hot_arc_merges;
    }
    if (metrics_.registry() != nullptr) {
      metrics_.registry()->counter("overload.merges").add();
    }
  }

  // Refill publish budgets and drain the deferral queues FIFO, oldest batch
  // first (its batch_seq is assigned now, at actual publication).
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    MiddlewareNode::OverloadState& ov = nodes_[i].overload;
    ov.window_published = 0;
    if (ov.deferred.empty() || !routing_.is_alive(i)) {
      continue;
    }
    MiddlewareNode& state = nodes_[i];
    while (!ov.deferred.empty() &&
           (opt.publish_budget == 0 ||
            ov.window_published < opt.publish_budget)) {
      DeferredPublication next = std::move(ov.deferred.front());
      ov.deferred.pop_front();
      const auto it = state.streams.find(next.stream);
      if (it == state.streams.end()) {
        // The stream unregistered while its batch waited: nothing left to
        // publish under — account the loss rather than vanish it.
        account_overload_drop(fault::DropCause::kBackpressure, i);
        if (metrics_.recording()) {
          ++metrics_.robustness().backpressure_drops;
        }
        continue;
      }
      ++ov.window_published;
      publish_mbr(i, it->second, std::move(next.mbr));
    }
  }
}

void MiddlewareSystem::account_overload_drop(fault::DropCause cause,
                                             NodeIndex origin) {
  // Overload-layer drops happen before (backpressure) or instead of (stream
  // teardown) a concrete Message existing, so a synthetic envelope carries
  // the attribution into the shared drop path — same counters, registry
  // series, and trace stream as every in-flight loss.
  Message synth;
  synth.kind = MsgKind::kMbrUpdate;
  synth.origin = origin;
  routing_.account_app_drop(cause, synth);
}

double MiddlewareSystem::ingest_backpressure(NodeIndex node) const {
  if (!config_.overload.has_value() || node >= nodes_.size() ||
      config_.overload->defer_capacity == 0) {
    return 0.0;
  }
  const double fill =
      static_cast<double>(nodes_[node].overload.deferred.size()) /
      static_cast<double>(config_.overload->defer_capacity);
  return std::min(1.0, fill);
}

}  // namespace sdsi::core
