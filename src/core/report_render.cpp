#include "core/report_render.hpp"

#include "core/metrics.hpp"
#include "fault/model.hpp"

namespace sdsi::core {

common::TextTable render_load_table(const LoadReport& load) {
  common::TextTable table({"Load component", "msgs/node/s"});
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(LoadComponent::kCount); ++c) {
    table.begin_row()
        .add_cell(load_component_name(static_cast<LoadComponent>(c)))
        .add_num(load.per_component[c], 3);
  }
  table.begin_row().add_cell("TOTAL").add_num(load.total, 3);
  return table;
}

common::TextTable render_drops_table(
    const std::array<std::uint64_t,
                     static_cast<std::size_t>(fault::DropCause::kCount)>&
        drops_by_cause) {
  common::TextTable table({"Drop cause", "Messages"});
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < drops_by_cause.size(); ++c) {
    table.begin_row()
        .add_cell(fault::drop_cause_name(static_cast<fault::DropCause>(c)))
        .add_int(static_cast<long long>(drops_by_cause[c]));
    total += drops_by_cause[c];
  }
  table.begin_row().add_cell("TOTAL").add_int(static_cast<long long>(total));
  return table;
}

std::vector<std::string> drop_cause_columns(const std::string& label) {
  std::vector<std::string> columns;
  columns.push_back(label);
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(fault::DropCause::kCount); ++c) {
    columns.emplace_back(
        fault::drop_cause_name(static_cast<fault::DropCause>(c)));
  }
  columns.emplace_back("Total");
  return columns;
}

}  // namespace sdsi::core
