// Content-to-key mapping (paper Sec IV-B, Eq. 6) and the stream-id location
// hash h2 (Sec IV-D).
//
// Feature vectors live on the unit hyper-sphere, so the routing coordinate
// x = Re(X_first) is guaranteed to be in [-1, 1]. Eq. 6 scales that interval
// onto the identifier circle:
//
//   h(x) = floor( (x + 1) / 2 * 2^m ),   clamped to 2^m - 1
//
// so -1 -> 0, 0 -> 2^(m-1), +1 -> 2^m - 1, and the paper's worked example
// holds: x = 0.40 with m = 5 gives key 22.
#pragma once

#include <utility>

#include "common/ring_math.hpp"
#include "common/types.hpp"
#include "dsp/mbr.hpp"

namespace sdsi::core {

class SummaryMapper {
 public:
  explicit SummaryMapper(common::IdSpace space);

  const common::IdSpace& space() const noexcept { return space_; }

  /// Eq. 6 for a single routing coordinate. Values outside [-1, 1]
  /// (possible only through inflated MBR corners) are clamped first.
  Key key_for_coordinate(double x) const noexcept;

  /// Key of a feature vector = Eq. 6 of its routing coordinate.
  Key key_for(const dsp::FeatureVector& features) const noexcept {
    return key_for_coordinate(features.routing_coordinate());
  }

  /// Key range [h(lo), h(hi)] an interval of routing coordinates covers.
  /// lo <= hi; because Eq. 6 is monotone the image never wraps the ring.
  std::pair<Key, Key> key_range(double lo, double hi) const noexcept;

  /// Key range of a similarity ball (Eq. 8): [h(x1 - r), h(x1 + r)].
  std::pair<Key, Key> query_range(const dsp::FeatureVector& features,
                                  double radius) const noexcept {
    const double x = features.routing_coordinate();
    return key_range(x - radius, x + radius);
  }

  /// Key range of an MBR: the image of [low_1re, high_1re].
  std::pair<Key, Key> mbr_range(const dsp::Mbr& mbr) const noexcept {
    return key_range(mbr.routing_low(), mbr.routing_high());
  }

  /// The location-service hash h2: stream id -> key (SHA-1 based, unrelated
  /// to content so the directory load spreads independently of data).
  Key key_for_stream(StreamId stream) const noexcept;

 private:
  common::IdSpace space_;
};

}  // namespace sdsi::core
