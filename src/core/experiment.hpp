// The Section V evaluation harness: builds a ring of data centers, attaches
// the middleware, replays the Table I workload, and reduces the metrics into
// exactly the series Figures 6-8 plot.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chord/network.hpp"
#include "core/robustness.hpp"
#include "core/system.hpp"
#include "fault/injector.hpp"
#include "routing/prefix_ring.hpp"
#include "routing/static_ring.hpp"
#include "streams/adversarial.hpp"
#include "streams/generators.hpp"

namespace sdsi::core {

/// Table I of the paper, plus the query radius used in Section V.
struct WorkloadConfig {
  sim::Duration stream_period_min = sim::Duration::millis(150);   // PMIN
  sim::Duration stream_period_max = sim::Duration::millis(250);   // PMAX
  sim::Duration mbr_lifespan = sim::Duration::millis(5000);       // BSPAN
  double query_rate_per_sec = 2.0;                                // QRATE
  sim::Duration query_lifespan_min = sim::Duration::seconds(20);  // QMIN
  sim::Duration query_lifespan_max = sim::Duration::seconds(100); // QMAX
  sim::Duration notify_period = sim::Duration::millis(2000);      // NPER
  double query_radius = 0.1;  // "similarity queries with radius 0.1"
};

enum class SubstrateKind {
  kChord,       // the paper's testbed
  kPrefixRing,  // Pastry-style prefix routing (portability claim, Sec II-B)
  kStaticRing,  // idealized one-hop DHT (ablation baseline)
};

/// What each node's stream emits. The paper evaluates on synthetic
/// random-walk streams plus real S&P500 and host-load datasets; the latter
/// two are modeled by the synthetic equivalents of DESIGN.md §2.
enum class StreamFamily {
  kRandomWalk,   // the paper's synthetic model
  kStockMarket,  // S&P500-like correlated daily closes (one ticker/node)
  kHostLoad,     // CMU-host-load-like machine utilization
};

/// Feature scheme used by the Section V experiments. The paper does not
/// state its window length; W = 256 is in the range typical for the cited
/// stream indexes (SWAT / StatStream) and gives consecutive summaries the
/// strong locality the paper's MBR mechanism assumes ("MBRs with relatively
/// small ranges"): with the Table I stream periods, one node emits ~1 MBR/s
/// whose first-coordinate extent stays small. See EXPERIMENTS.md for the
/// sensitivity of the Fig 6(a) "MBRs internal" component to this choice.
inline dsp::FeatureConfig experiment_feature_config() {
  dsp::FeatureConfig config;
  config.window_size = 256;
  config.num_coefficients = 2;
  config.normalization = dsp::Normalization::kZNormalize;
  return config;
}

/// Observability exports. When `dir` is non-empty the run attaches a
/// time-series MetricsRegistry and writes `<dir>/metrics.json` (schema v1)
/// when it finishes; with `trace` also set it streams `<dir>/trace.jsonl`
/// span events as the run executes. The directory is created if missing.
/// docs/OBSERVABILITY.md documents both schemas.
struct ObsOptions {
  std::string dir;
  bool trace = false;
  /// Simulated-time window the series fold into.
  sim::Duration window = sim::Duration::seconds(1);
  std::size_t ring_capacity = 1024;

  bool enabled() const noexcept { return !dir.empty(); }
};

struct ExperimentConfig {
  std::size_t num_nodes = 50;
  unsigned id_bits = 32;
  std::uint64_t seed = 42;
  WorkloadConfig workload;
  dsp::FeatureConfig features = experiment_feature_config();
  /// Summary/index/routing-key strategy (core/strategy.hpp): the default
  /// kDft is the paper's pipeline, byte-identical to pre-strategy builds.
  StrategyOptions strategy;
  MbrBatcher::Options batching;  // defaults: fixed batches of beta = 5
  routing::MulticastStrategy multicast =
      routing::MulticastStrategy::kSequential;
  /// Sec VI-A closed loop for every stream (nullopt = paper's fixed beta).
  std::optional<AdaptivePrecisionController::Options> adaptive_precision;
  /// Uniform probability that any transmission is lost (fault injection).
  double message_loss = 0.0;
  SubstrateKind substrate = SubstrateKind::kChord;
  /// Recursive (paper default) vs iterative Chord lookups.
  chord::LookupStyle chord_lookup = chord::LookupStyle::kRecursive;
  StreamFamily stream_family = StreamFamily::kRandomWalk;
  /// Steady-state ramp before measurement starts (active query population
  /// needs query_rate * mean lifespan ~ 120 queries to stabilize).
  sim::Duration warmup = sim::Duration::seconds(60);
  sim::Duration measure = sim::Duration::seconds(60);

  // --- Robustness (chaos) extensions --------------------------------------

  /// Structured fault injection: bursty loss, latency jitter, key-range
  /// partitions, crash/recover waves. Times in the plan are absolute
  /// simulation times (warmup starts at 0). Empty injects nothing.
  fault::FaultPlan faults;
  /// Self-healing knobs forwarded into MiddlewareConfig.
  bool mbr_acks = false;
  bool response_acks = false;
  sim::Duration mbr_refresh_period = sim::Duration();
  sim::Duration query_refresh_period = sim::Duration();
  /// Successor-list replication degree (0 disables the replication layer);
  /// forwarded into MiddlewareConfig. Recovered nodes additionally pull
  /// their key-range slice from their successor (ownership handoff).
  std::size_t replication_factor = 0;
  /// Anti-entropy digest period (0 disables); forwarded into
  /// MiddlewareConfig.
  sim::Duration anti_entropy_period = sim::Duration();
  /// Recall-oracle sampling period (zero disables the oracle entirely).
  /// Sampling stops at the end of `measure`.
  sim::Duration oracle_sample_period = sim::Duration();
  /// Extra settling time after `measure` (faults cleared, deliveries and
  /// refreshes draining) before the reports are read. Robustness runs use
  /// ~2 refresh periods; load/overhead figure runs keep it zero.
  sim::Duration drain = sim::Duration();

  // --- Adversarial-skew extensions ----------------------------------------

  /// Adversarial workload shaping (streams/adversarial.hpp): Zipf pattern
  /// pools, Zipf clients, skewed node placement, flash crowds. nullopt (the
  /// default) keeps the paper's uniform workload byte-identical.
  std::optional<streams::AdversarialSpec> adversarial;
  /// Overload-survival layer (hot-arc splitting, load shedding, ingest
  /// backpressure); forwarded into MiddlewareConfig. When set, stream
  /// emission additionally honors MiddlewareSystem::ingest_backpressure —
  /// a source under publish backpressure stretches its emission gaps
  /// (slows down) instead of having the middleware drop its batches.
  std::optional<OverloadOptions> overload;

  /// Observability exports (metrics.json / trace.jsonl); off by default.
  ObsOptions obs;

  /// Worker lanes for the parallel match/ingest engine (MiddlewareConfig::
  /// threads): 1 = serial (default, zero overhead), 0 = hardware
  /// concurrency. Results are byte-identical at every setting; only
  /// wall-clock time changes. Deliberately NOT exported into metrics.json,
  /// so runs differing only in threads produce identical documents (the
  /// serial/parallel equivalence test relies on this).
  std::size_t threads = 1;

  /// Event-queue backend for the simulation kernel. kAuto (default) honors
  /// the SDSI_SIM_HEAP_QUEUE environment variable; kLegacyHeap forces the
  /// pre-calendar binary-heap kernel. Like `threads`, the backend is
  /// unobservable in results: both replay the identical event order, and
  /// the scheduler-equivalence test asserts byte-identical metrics.json.
  sim::QueueBackend queue_backend = sim::QueueBackend::kAuto;
};

/// Fig 6(a): average per-node message load per second, seven components.
struct LoadReport {
  std::array<double, static_cast<std::size_t>(LoadComponent::kCount)>
      per_component{};
  double total = 0.0;
  /// Fig 6(b): total load rate of every individual node.
  std::vector<double> per_node_total;
};

/// Fig 7: additional messages the system sends per input event.
struct OverheadReport {
  double mbr_internal = 0.0;       // range-span copies per MBR
  double mbr_transit = 0.0;        // overlay relays per MBR
  double query_internal = 0.0;     // range-span copies per query
  double query_transit = 0.0;      // overlay relays per query
  double neighbor_exchange = 0.0;  // neighbor digests per response
  double response_transit = 0.0;   // overlay relays per response
};

/// Fig 8: average hops traversed by each message type.
struct HopsReport {
  double mbr = 0.0;
  double mbr_internal = 0.0;
  double query = 0.0;
  double query_internal = 0.0;
  double response = 0.0;
};

/// End-to-end quality numbers (not in the paper's figures, but what the
/// index is *for*; EXPERIMENTS.md reports them as sanity checks).
struct QualityReport {
  std::uint64_t queries_posed = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t matches_reported = 0;
  double mean_first_response_ms = 0.0;
};

/// Degradation + self-healing numbers of a (chaos) run.
struct RobustnessReport {
  /// Recall vs the fault-free oracle over queries from never-crashed
  /// clients; 0 when the oracle was disabled or detected nothing.
  double recall = 0.0;
  std::uint64_t oracle_pairs = 0;     // oracle (query, stream) pairs
  std::uint64_t delivered_pairs = 0;  // of those, reaching their client
  /// Duplicate match entries per delivered match entry (client side).
  double duplicate_delivery_rate = 0.0;
  std::uint64_t duplicate_stores = 0;  // store-level redelivery suppressions
  std::uint64_t mbr_retries = 0;
  std::uint64_t mbr_retry_exhausted = 0;
  std::uint64_t mbr_refreshes = 0;
  std::uint64_t mbr_acks = 0;
  std::uint64_t response_retries = 0;
  std::uint64_t location_retries = 0;
  /// Heal latency (first send -> confirming ack, retried batches only).
  /// Quantiles are log-bucket estimates (obs/log_histogram.hpp); mean and
  /// max are exact.
  std::uint64_t heals = 0;
  double mean_heal_latency_ms = 0.0;
  double max_heal_latency_ms = 0.0;
  double p50_heal_latency_ms = 0.0;
  double p90_heal_latency_ms = 0.0;
  double p99_heal_latency_ms = 0.0;
  /// Drops by cause label (fault::DropCause order), unified across the link
  /// loss models and routing-level losses, measurement window only.
  std::array<std::uint64_t, static_cast<std::size_t>(fault::DropCause::kCount)>
      drops_by_cause{};
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;

  // --- Replication & failover layer ---------------------------------------
  std::uint64_t replica_puts = 0;       // store entries mirrored to replicas
  std::uint64_t replica_repairs = 0;    // anti-entropy backfills applied
  std::uint64_t handoff_entries = 0;    // entries moved by join/leave handoff
  std::uint64_t handoff_bytes = 0;      // approximate handoff payload bytes
  std::uint64_t aggregator_failovers = 0;  // replica-to-aggregator promotions
  std::uint64_t report_detours = 0;     // sends saved by dead-hop detours
  std::uint64_t oracle_fallbacks = 0;   // routing bypassed protocol state
  /// Aggregator dark time per failover (last mirror -> promotion), ms.
  double mean_failover_latency_ms = 0.0;
  double p90_failover_latency_ms = 0.0;
  double max_failover_latency_ms = 0.0;

  // --- Overload-survival layer --------------------------------------------
  std::uint64_t hot_arc_splits = 0;
  std::uint64_t hot_arc_merges = 0;
  std::uint64_t split_diverted_stores = 0;
  std::uint64_t shed_mbrs = 0;
  std::uint64_t backpressure_deferrals = 0;
  std::uint64_t backpressure_drops = 0;
  /// Load-imbalance ratios over the measurement window (nearest-rank p99 /
  /// median across nodes; 0 when the median is 0). `message_load_*` counts
  /// delivered messages (which splitting cannot reduce); `work_*` counts
  /// index work — stores, match scans, subscription installs — the quantity
  /// hot-arc splitting actually redistributes.
  double message_load_p99_over_median = 0.0;
  double work_p99_over_median = 0.0;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Builds the ring + workload and schedules the stream/query arrivals,
  /// without executing any simulated time. run() calls this implicitly;
  /// benches call it explicitly so wall-clock timing covers only the
  /// event-execution phase, not substrate bootstrap.
  void prepare();

  /// Runs warm-up (metrics off), then the measurement window (metrics on).
  /// Calls prepare() first unless it already ran.
  void run();

  const ExperimentConfig& config() const noexcept { return config_; }
  double measured_seconds() const noexcept {
    return config_.measure.as_seconds();
  }

  LoadReport load_report() const;
  OverheadReport overhead_report() const;
  HopsReport hops_report() const;
  QualityReport quality_report() const;
  RobustnessReport robustness_report() const;

  const fault::FaultInjector* injector() const noexcept {
    return injector_.get();
  }
  const RecallOracle* oracle() const noexcept { return oracle_.get(); }

  MiddlewareSystem& system() { return *system_; }
  const MetricsCollector& metrics() const { return system_->metrics(); }
  sim::Simulator& simulator() { return sim_; }
  routing::RoutingSystem& routing_system() { return *routing_; }

  /// Time-series registry; nullptr unless config.obs.dir was set.
  const obs::MetricsRegistry* registry() const noexcept {
    return registry_.get();
  }

 private:
  void build();
  void schedule_streams();
  void schedule_queries();
  void schedule_adversarial();
  dsp::FeatureVector random_query_features();
  dsp::FeatureVector query_features_from(common::Pcg32& rng);
  std::unique_ptr<streams::StreamGenerator> make_generator(NodeIndex node);

  void wire_faults();
  void wire_observability();
  void write_obs_exports();

  ExperimentConfig config_;
  common::RngFactory rng_factory_;
  sim::Simulator sim_;
  // Declared before routing_/system_, which hold raw pointers into them, so
  // destruction runs in the safe order.
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink_;
  std::unique_ptr<routing::RoutingSystem> routing_;
  std::unique_ptr<MiddlewareSystem> system_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<RecallOracle> oracle_;
  sim::TaskHandle oracle_task_;
  std::vector<std::unique_ptr<streams::StreamGenerator>> generators_;
  std::shared_ptr<streams::StockMarketModel> market_;  // stock family only
  common::Pcg32 query_rng_;
  common::Pcg32 query_walk_rng_;
  /// Adversarial machinery; null unless config.adversarial asks for it.
  std::unique_ptr<streams::ZipfSampler> pattern_pool_;
  std::unique_ptr<streams::ZipfSampler> client_zipf_;
  /// Live query arrival rate: the flash-crowd boost raises it mid-run and
  /// restores it afterwards; benign runs never touch it.
  double current_query_rate_ = 0.0;
  std::uint64_t queries_posed_ = 0;
  bool prepared_ = false;
  bool ran_ = false;
};

}  // namespace sdsi::core
