// Adaptive precision setting for MBRs (paper Sec VI-A, after Olston et al.,
// "Adaptive precision setting for cached approximate values").
//
// The fixed batching of Sec IV-G is data-independent: a fast-moving stream
// ships huge boxes, a flat stream ships needless updates. This controller
// closes the loop: it watches how often a stream's batcher emits and adjusts
// the per-dimension extent budget to hit a target update rate —
//  - emitting too often  -> grow the boxes (cheaper, less precise);
//  - emitting too rarely -> shrink them (preciser, the bandwidth is there).
// Growth is multiplicative on overflow, shrinkage is gentle and periodic,
// the asymmetric policy Olston's caching scheme uses.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace sdsi::core {

class AdaptivePrecisionController {
 public:
  struct Options {
    /// Desired MBR emissions per adaptation window.
    double target_rate = 1.0;
    /// Extent budget bounds (feature-space units; coordinates live in
    /// [-1, 1], so 0.5 is a quarter of the diameter).
    double min_extent = 1e-3;
    double max_extent = 0.5;
    double grow_factor = 1.5;
    double shrink_factor = 0.9;
    /// Feature vectors per adaptation step.
    std::uint64_t window = 16;
  };

  AdaptivePrecisionController() : AdaptivePrecisionController(Options{}) {}
  explicit AdaptivePrecisionController(Options options)
      : options_(options), extent_(options.max_extent / 4.0) {
    SDSI_CHECK(options_.min_extent > 0.0);
    SDSI_CHECK(options_.min_extent <= options_.max_extent);
    SDSI_CHECK(options_.grow_factor > 1.0);
    SDSI_CHECK(options_.shrink_factor > 0.0 && options_.shrink_factor < 1.0);
    SDSI_CHECK(options_.window >= 1);
    SDSI_CHECK(options_.target_rate > 0.0);
  }

  const Options& options() const noexcept { return options_; }
  double extent() const noexcept { return extent_; }
  std::uint64_t adaptations() const noexcept { return adaptations_; }

  /// Observes one feature vector having been pushed (and whether the batch
  /// closed on it). Returns the extent budget to apply from now on.
  double observe(bool emitted);

 private:
  Options options_;
  double extent_;
  std::uint64_t vectors_in_window_ = 0;
  std::uint64_t emissions_in_window_ = 0;
  std::uint64_t adaptations_ = 0;
};

}  // namespace sdsi::core
