#include "fault/model.hpp"

#include <utility>

#include "common/check.hpp"

namespace sdsi::fault {

LinkFaultModel::LinkFaultModel(FaultPlan plan, common::IdSpace space,
                               common::Pcg32 rng)
    : plan_(std::move(plan)), space_(space), rng_(rng) {
  SDSI_CHECK(plan_.uniform_loss >= 0.0 && plan_.uniform_loss <= 1.0);
  if (plan_.burst_loss.has_value()) {
    const GilbertElliottParams& ge = *plan_.burst_loss;
    SDSI_CHECK(ge.p_good_to_bad >= 0.0 && ge.p_good_to_bad <= 1.0);
    SDSI_CHECK(ge.p_bad_to_good > 0.0 && ge.p_bad_to_good <= 1.0);
    SDSI_CHECK(ge.loss_good >= 0.0 && ge.loss_good <= 1.0);
    SDSI_CHECK(ge.loss_bad >= 0.0 && ge.loss_bad <= 1.0);
  }
  for (const KeyRangePartition& partition : plan_.partitions) {
    SDSI_CHECK(partition.from <= partition.until);
  }
}

std::optional<DropCause> LinkFaultModel::sample_drop(Key target_key,
                                                     sim::SimTime now) {
  for (const KeyRangePartition& partition : plan_.partitions) {
    if (now >= partition.from && now < partition.until &&
        space_.in_closed(target_key, partition.lo, partition.hi)) {
      return DropCause::kPartition;
    }
  }
  if (plan_.uniform_loss > 0.0 && rng_.uniform01() < plan_.uniform_loss) {
    return DropCause::kUniformLoss;
  }
  if (plan_.burst_loss.has_value()) {
    const GilbertElliottParams& ge = *plan_.burst_loss;
    // Advance the chain, then sample the current state's loss probability.
    if (in_bad_state_) {
      if (rng_.uniform01() < ge.p_bad_to_good) {
        in_bad_state_ = false;
      }
    } else {
      if (rng_.uniform01() < ge.p_good_to_bad) {
        in_bad_state_ = true;
      }
    }
    const double loss = in_bad_state_ ? ge.loss_bad : ge.loss_good;
    if (loss > 0.0 && rng_.uniform01() < loss) {
      return DropCause::kBurstLoss;
    }
  }
  return std::nullopt;
}

sim::Duration LinkFaultModel::sample_jitter() {
  if (!plan_.jitter.has_value() ||
      plan_.jitter->max <= sim::Duration()) {
    return sim::Duration();
  }
  return sim::Duration::micros(
      rng_.uniform_int(0, plan_.jitter->max.count_micros()));
}

}  // namespace sdsi::fault
