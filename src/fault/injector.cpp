#include "fault/injector.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace sdsi::fault {

FaultInjector::FaultInjector(sim::Simulator& simulator, FaultPlan plan,
                             MembershipHooks hooks, common::Pcg32 rng)
    : sim_(simulator),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      rng_(rng) {
  if (!plan_.crash_waves.empty()) {
    SDSI_CHECK(hooks_.alive_nodes && hooks_.crash && hooks_.recover &&
               hooks_.maintenance);
  }
  for (const CrashWave& wave : plan_.crash_waves) {
    SDSI_CHECK(wave.fraction >= 0.0 && wave.fraction < 1.0);
    const sim::SimTime wave_clear =
        wave.down_for > sim::Duration() ? wave.at + wave.down_for : wave.at;
    clear_at_ = std::max(clear_at_, wave_clear);
  }
  for (const KeyRangePartition& partition : plan_.partitions) {
    clear_at_ = std::max(clear_at_, partition.until);
  }
}

void FaultInjector::arm() {
  SDSI_CHECK(!armed_);
  armed_ = true;
  for (const CrashWave& wave : plan_.crash_waves) {
    sim_.schedule_at(wave.at, [this, wave] { execute_wave(wave); });
  }
}

void FaultInjector::execute_wave(const CrashWave& wave) {
  std::vector<NodeIndex> alive = hooks_.alive_nodes();
  // Never take the ring below two nodes: the scenario is degraded service,
  // not total annihilation.
  const auto target = static_cast<std::size_t>(
      wave.fraction * static_cast<double>(alive.size()));
  const std::size_t count =
      std::min(target, alive.size() >= 2 ? alive.size() - 2 : 0);

  // Seeded partial Fisher-Yates: pick `count` victims uniformly.
  std::vector<NodeIndex> victims;
  victims.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto remaining = static_cast<std::uint32_t>(alive.size() - i);
    const std::size_t pick = i + rng_.bounded(remaining);
    std::swap(alive[i], alive[pick]);
    victims.push_back(alive[i]);
  }

  for (const NodeIndex victim : victims) {
    hooks_.crash(victim);
    ever_crashed_.insert(victim);
    down_.insert(victim);
    ++crashes_;
  }
  if (!victims.empty()) {
    hooks_.maintenance(wave.maintenance_rounds);
  }

  if (wave.down_for > sim::Duration()) {
    sim_.schedule_after(wave.down_for, [this, victims, wave] {
      for (const NodeIndex victim : victims) {
        hooks_.recover(victim);
        down_.erase(victim);
        ++recoveries_;
      }
      if (!victims.empty()) {
        hooks_.maintenance(wave.maintenance_rounds);
      }
    });
  }
}

}  // namespace sdsi::fault
