// Drives the scheduled (time-based) fault processes of a FaultPlan against
// the simulator: crash/recover waves interleaved with substrate maintenance
// rounds. Link-level faults (loss, jitter, partitions) live in the
// LinkFaultModel the plan also configures; the Experiment installs that on
// the RoutingSystem and arms this injector for the membership side.
//
// The injector is substrate-agnostic: membership operations are injected as
// callbacks so the fault library never depends on chord:: (the Experiment
// wires ChordNetwork::crash / recover / run_maintenance_rounds in).
#pragma once

#include <functional>
#include <unordered_set>
#include <vector>

#include "fault/model.hpp"
#include "sim/simulator.hpp"

namespace sdsi::fault {

/// Membership operations a crash wave needs from the substrate.
struct MembershipHooks {
  /// Indices of currently alive nodes, in a deterministic order.
  std::function<std::vector<NodeIndex>()> alive_nodes;
  std::function<void(NodeIndex)> crash;
  std::function<void(NodeIndex)> recover;
  /// Runs `rounds` of substrate self-maintenance (e.g. Chord stabilize +
  /// fix-fingers sweeps) so the ring heals around the membership change.
  std::function<void(int rounds)> maintenance;
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& simulator, FaultPlan plan,
                MembershipHooks hooks, common::Pcg32 rng);

  /// Schedules every crash wave of the plan (idempotent; call once).
  void arm();

  /// Nodes crashed by any wave so far (recovered or not). Recall metrics
  /// exclude queries posed by these clients: a crashed client's losses are
  /// its own, not the index's.
  const std::unordered_set<NodeIndex>& ever_crashed() const noexcept {
    return ever_crashed_;
  }

  /// Nodes currently down.
  const std::unordered_set<NodeIndex>& currently_down() const noexcept {
    return down_;
  }

  std::uint64_t crashes_executed() const noexcept { return crashes_; }
  std::uint64_t recoveries_executed() const noexcept { return recoveries_; }

  /// Latest instant at which any scheduled fault process is still active
  /// (last recovery, last partition end, last permanent-crash wave time).
  /// Measurement of "recovered recall" should start after this.
  sim::SimTime faults_clear_at() const noexcept { return clear_at_; }

 private:
  void execute_wave(const CrashWave& wave);

  sim::Simulator& sim_;
  FaultPlan plan_;
  MembershipHooks hooks_;
  common::Pcg32 rng_;
  bool armed_ = false;
  std::unordered_set<NodeIndex> ever_crashed_;
  std::unordered_set<NodeIndex> down_;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  sim::SimTime clear_at_;
};

}  // namespace sdsi::fault
