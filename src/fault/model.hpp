// Structured fault injection (robustness layer).
//
// The paper's middleware is soft-state by design (Sec IV: MBRs expire after
// BSPAN, subscriptions refresh, Chord heals via stabilization), so graceful
// degradation under faults is a property worth *measuring*, not assuming.
// This module provides the fault processes a chaos scenario composes:
//
//  - uniform i.i.d. link loss (the legacy model, kept for comparability);
//  - bursty Gilbert-Elliott link loss: a two-state Markov chain (good/bad)
//    sampled per transmission, producing the correlated loss runs real WANs
//    exhibit — a burst can swallow an entire range multicast;
//  - per-transmission latency jitter, uniform in [0, max];
//  - key-range partitions: during a time window, every transmission routed
//    toward a key inside the clockwise range [lo, hi] is dropped (a blackout
//    of one arc of the ring);
//  - scheduled crash/recover waves, executed by the FaultInjector
//    (fault/injector.hpp) against the substrate's membership API.
//
// All processes draw from one seeded Pcg32, so a chaos run is exactly as
// bit-reproducible as a fault-free one.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/ring_math.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/time.hpp"

namespace sdsi::fault {

/// Why a transmission (or routed message) was dropped. The first three are
/// link-level faults injected by the LinkFaultModel; the next three are
/// routing-level losses (messages that died inside the overlay) which the
/// substrates report; kShedOverload/kBackpressure are deliberate
/// overload-control sheds; kOutboxOverflow/kMalformedFrame are transport
/// endpoint losses (a full per-peer socket outbox, a frame the receiving
/// codec rejected) — so every loss, injected or chosen, is accounted for
/// under one label set across the sim and the socket ring alike.
enum class DropCause : std::size_t {
  kUniformLoss = 0,  // i.i.d. loss model
  kBurstLoss = 1,    // Gilbert-Elliott bad-state loss
  kPartition = 2,    // key-range blackout window
  kDeadNode = 3,     // next hop / destination crashed mid-route
  kHopLimit = 4,     // routing-loop safety valve (mid-churn only)
  kDeadAggregator = 5,  // report/response path: whole replica set gone
  kShedOverload = 6,    // bounded ingest queue full: MBR shed at the index
  kBackpressure = 7,    // source-side deferral queue overflowed
  kOutboxOverflow = 8,  // socket transport: bounded per-peer outbox full
  kMalformedFrame = 9,  // receiver rejected the frame at the wire codec
  kCount = 10,
};

/// Human label for report tables. Out-of-range values are a program error
/// (every loss must be attributed), so this aborts instead of returning a
/// silent placeholder.
inline const char* drop_cause_name(DropCause cause) {
  switch (cause) {
    case DropCause::kUniformLoss: return "uniform loss";
    case DropCause::kBurstLoss: return "burst loss";
    case DropCause::kPartition: return "partition";
    case DropCause::kDeadNode: return "dead node";
    case DropCause::kHopLimit: return "hop limit";
    case DropCause::kDeadAggregator: return "dead aggregator";
    case DropCause::kShedOverload: return "shed overload";
    case DropCause::kBackpressure: return "backpressure";
    case DropCause::kOutboxOverflow: return "outbox overflow";
    case DropCause::kMalformedFrame: return "malformed frame";
    case DropCause::kCount: break;
  }
  SDSI_CHECK(false && "unknown DropCause");
  return "";
}

/// Machine identifier used in metric names (`drops.<slug>`) and in the JSON
/// exports; stable across releases (docs/OBSERVABILITY.md is the registry).
inline const char* drop_cause_slug(DropCause cause) {
  switch (cause) {
    case DropCause::kUniformLoss: return "uniform_loss";
    case DropCause::kBurstLoss: return "burst_loss";
    case DropCause::kPartition: return "partition";
    case DropCause::kDeadNode: return "dead_node";
    case DropCause::kHopLimit: return "hop_limit";
    case DropCause::kDeadAggregator: return "dead_aggregator";
    case DropCause::kShedOverload: return "shed_overload";
    case DropCause::kBackpressure: return "backpressure";
    case DropCause::kOutboxOverflow: return "outbox_overflow";
    case DropCause::kMalformedFrame: return "malformed_frame";
    case DropCause::kCount: break;
  }
  SDSI_CHECK(false && "unknown DropCause");
  return "";
}

/// Two-state Markov loss (Gilbert-Elliott). State transitions are sampled
/// once per transmission; mean burst length = 1 / p_bad_to_good, stationary
/// loss rate = loss_bad * p_good_to_bad / (p_good_to_bad + p_bad_to_good)
/// (+ the loss_good floor).
struct GilbertElliottParams {
  double p_good_to_bad = 0.01;
  double p_bad_to_good = 0.25;
  double loss_good = 0.0;  // residual loss in the good state
  double loss_bad = 1.0;   // loss probability inside a burst
};

/// Blackout of the clockwise key range [lo, hi] during [from, until):
/// transmissions *toward* a key in the range are dropped at the sender.
struct KeyRangePartition {
  Key lo = 0;
  Key hi = 0;
  sim::SimTime from;
  sim::SimTime until;
};

/// At time `at`, crash floor(fraction * alive) nodes (chosen seeded-uniform
/// among the alive set); if down_for > 0, recover them that much later.
/// After every membership change the injector runs `maintenance_rounds` of
/// substrate stabilization, modeling a ring that keeps healing itself.
struct CrashWave {
  sim::SimTime at;
  double fraction = 0.0;
  sim::Duration down_for;  // zero = the nodes stay down
  int maintenance_rounds = 4;
};

/// Per-transmission extra latency, uniform in [0, max].
struct LatencyJitter {
  sim::Duration max;
};

/// A composed chaos scenario. Empty (the default) injects nothing.
/// `reorder`/`corrupt` are transport-level processes consumed by
/// net::FaultyTransport (the sim's RoutingSystem has no byte stream to
/// corrupt); the rest are shared by both worlds.
struct FaultPlan {
  double uniform_loss = 0.0;
  std::optional<GilbertElliottParams> burst_loss;
  std::optional<LatencyJitter> jitter;
  std::vector<KeyRangePartition> partitions;
  std::vector<CrashWave> crash_waves;
  /// Probability a frame is held past later sends to the same peer (an
  /// extra `reorder_extra` of delay on top of any jitter draw).
  double reorder = 0.0;
  sim::Duration reorder_extra = sim::Duration::millis(5);
  /// Probability one payload byte of the encoded frame is flipped in
  /// flight. The receiver's codec sees the damage (kBadPayload -> a counted
  /// kMalformedFrame drop) or, rarely, a decodable-but-altered payload —
  /// both are what real bit rot does to a framed stream.
  double corrupt = 0.0;

  bool has_link_faults() const noexcept {
    return uniform_loss > 0.0 || burst_loss.has_value() ||
           jitter.has_value() || !partitions.empty() || reorder > 0.0 ||
           corrupt > 0.0;
  }
  bool empty() const noexcept {
    return !has_link_faults() && crash_waves.empty();
  }
};

/// The seeded link-level sampler a RoutingSystem consults on every
/// transmission. Owns the Markov chain state and the jitter stream.
class LinkFaultModel {
 public:
  LinkFaultModel(FaultPlan plan, common::IdSpace space, common::Pcg32 rng);

  /// Samples whether the transmission toward `target_key` at `now` is lost;
  /// returns the cause, or nullopt when it goes through. Partition checks
  /// run first (deterministic), then uniform, then the burst chain — the
  /// chain advances on every non-partitioned transmission so burst structure
  /// is independent of the other processes.
  std::optional<DropCause> sample_drop(Key target_key, sim::SimTime now);

  /// Extra latency for this transmission (zero without a jitter process).
  sim::Duration sample_jitter();

  /// Whether the burst chain currently sits in the bad state (tests).
  bool in_burst() const noexcept { return in_bad_state_; }

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  common::IdSpace space_;
  common::Pcg32 rng_;
  bool in_bad_state_ = false;
};

}  // namespace sdsi::fault
