// make_figures — paper-figure reproduction tooling.
//
// Takes one observability run directory (produced by `sdsi_sim --obs-dir`
// or `bench_robustness --obs-dir`), validates the emitted documents against
// the published schemas (metrics.json `sdsi.metrics` v3, v1/v2 accepted;
// trace.jsonl `sdsi.trace` v1 when present), and renders the figure data
// tables:
//
//   figures/fig6a_load.csv        Fig 6(a) load decomposition
//   figures/fig6b_distribution.csv Fig 6(b) per-node load rates
//   figures/fig7_overhead.csv     Fig 7 overhead per input event
//   figures/fig8_hops.csv         Fig 8 hops per message type
//   figures/heal_latency_hist.csv heal-latency distribution (chaos runs)
//   figures/skew_work.csv         per-node index work + imbalance (v3 runs)
//   figures/timeseries.csv        every windowed series, long format
//
// Validation failures exit nonzero with a list of violations, so this
// binary doubles as the schema checker wired into `ctest -L obs-smoke`.
//
// Second mode: `make_figures --strategies BENCH_strategies.json [--out DIR]`
// validates the cross-strategy bench document (bench/bench_strategies.cpp)
// and renders figures/strategy_comparison.csv — one row per strategy, each
// metric averaged over the shared seeds — plus the same table on stdout
// (the source of the comparison table in docs/STRATEGIES.md).
//
//   make_figures <run-dir> [--out DIR]
#include <algorithm>
#include <cstdio>
#include <map>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace {

using sdsi::obs::Json;

std::vector<std::string> g_errors;

void require(bool ok, const std::string& message) {
  if (!ok) {
    g_errors.push_back(message);
  }
}

/// Object member of the expected type, nullptr (plus a recorded violation)
/// otherwise.
const Json* field(const Json& parent, const std::string& key, Json::Type type,
                  const std::string& where) {
  const Json* value = parent.find(key);
  if (value == nullptr) {
    g_errors.push_back(where + ": missing \"" + key + "\"");
    return nullptr;
  }
  if (value->type() != type) {
    g_errors.push_back(where + ": \"" + key + "\" has the wrong type");
    return nullptr;
  }
  return value;
}

void check_histogram(const Json& histogram, const std::string& where) {
  for (const char* key : {"count", "sum", "min", "max", "mean", "p50", "p90",
                          "p99"}) {
    field(histogram, key, Json::Type::kNumber, where);
  }
  const Json* buckets = field(histogram, "buckets", Json::Type::kArray, where);
  if (buckets != nullptr) {
    for (std::size_t i = 0; i < buckets->size(); ++i) {
      require((*buckets)[i].is_array() && (*buckets)[i].size() == 3,
              where + ": bucket entries must be [low, high, count]");
    }
  }
}

void check_metrics_schema(const Json& doc) {
  const Json* version =
      field(doc, "schema_version", Json::Type::kNumber, "metrics.json");
  // v1: the original 8-component export. v2 adds the "replication" load
  // component, the replication category, and the failover robustness fields.
  // v3 adds load.per_node_work, robustness.imbalance + the overload-survival
  // counters, the shed_overload/backpressure drop causes, and run.overload.
  // v4 adds run.strategy (the indexing strategy name).
  std::int64_t schema = 0;
  if (version != nullptr) {
    schema = version->as_int();
    require(schema >= 1 && schema <= 4,
            "metrics.json: schema_version must be 1 through 4");
  }
  const Json* kind = field(doc, "kind", Json::Type::kString, "metrics.json");
  if (kind != nullptr) {
    require(kind->as_string() == "sdsi.metrics",
            "metrics.json: kind must be \"sdsi.metrics\"");
  }

  const Json* run = field(doc, "run", Json::Type::kObject, "metrics.json");
  if (run != nullptr) {
    for (const char* key : {"nodes", "seed", "warmup_s", "measure_s"}) {
      field(*run, key, Json::Type::kNumber, "run");
    }
    field(*run, "substrate", Json::Type::kString, "run");
    field(*run, "multicast", Json::Type::kString, "run");
  }

  const Json* load = field(doc, "load", Json::Type::kObject, "metrics.json");
  if (load != nullptr) {
    const Json* per_component =
        field(*load, "per_component", Json::Type::kObject, "load");
    if (per_component != nullptr) {
      const std::size_t expected = schema >= 2 ? 9 : 8;
      require(per_component->members().size() == expected,
              schema >= 2
                  ? "load.per_component: expected 9 components (v2)"
                  : "load.per_component: expected the 8 Fig 6(a) components");
      for (const auto& [name, rate] : per_component->members()) {
        require(rate.is_number(),
                "load.per_component." + name + ": must be a number");
      }
    }
    field(*load, "total", Json::Type::kNumber, "load");
    field(*load, "per_node_total", Json::Type::kArray, "load");
    if (schema >= 3) {
      const Json* per_node_work =
          field(*load, "per_node_work", Json::Type::kArray, "load");
      const Json* per_node_total = load->find("per_node_total");
      if (per_node_work != nullptr && per_node_total != nullptr &&
          per_node_total->is_array()) {
        require(per_node_work->size() == per_node_total->size(),
                "load.per_node_work: must have one entry per node");
      }
    }
  }

  const Json* overhead =
      field(doc, "overhead", Json::Type::kObject, "metrics.json");
  if (overhead != nullptr) {
    for (const char* key : {"mbr_internal", "mbr_transit", "query_internal",
                            "query_transit", "neighbor_exchange",
                            "response_transit"}) {
      field(*overhead, key, Json::Type::kNumber, "overhead");
    }
  }

  const Json* hops = field(doc, "hops", Json::Type::kObject, "metrics.json");
  if (hops != nullptr) {
    for (const char* key : {"mbr", "mbr_internal", "query", "query_internal",
                            "response"}) {
      field(*hops, key, Json::Type::kNumber, "hops");
    }
  }

  const Json* categories =
      field(doc, "categories", Json::Type::kObject, "metrics.json");
  if (categories != nullptr) {
    std::vector<const char*> names = {"mbr",      "query",    "response",
                                      "neighbor", "location", "control"};
    if (schema >= 2) {
      names.push_back("replication");
    }
    for (const char* name : names) {
      const Json* category =
          field(*categories, name, Json::Type::kObject, "categories");
      if (category == nullptr) {
        continue;
      }
      for (const char* key :
           {"originated", "range_internal", "transit", "delivered"}) {
        field(*category, key, Json::Type::kNumber,
              std::string("categories.") + name);
      }
      const Json* latency =
          field(*category, "latency_ms", Json::Type::kObject,
                std::string("categories.") + name);
      if (latency != nullptr) {
        check_histogram(*latency,
                        std::string("categories.") + name + ".latency_ms");
      }
    }
  }

  const Json* drops = field(doc, "drops", Json::Type::kObject, "metrics.json");
  if (drops != nullptr) {
    field(*drops, "total", Json::Type::kNumber, "drops");
    if (schema >= 3) {
      field(*drops, "shed_overload", Json::Type::kNumber, "drops");
      field(*drops, "backpressure", Json::Type::kNumber, "drops");
    }
  }

  field(doc, "quality", Json::Type::kObject, "metrics.json");

  const Json* robustness =
      field(doc, "robustness", Json::Type::kObject, "metrics.json");
  if (robustness != nullptr) {
    const Json* heal = field(*robustness, "heal_latency_ms",
                             Json::Type::kObject, "robustness");
    if (heal != nullptr) {
      check_histogram(*heal, "robustness.heal_latency_ms");
    }
    if (schema >= 2) {
      for (const char* key :
           {"replica_puts", "replica_repairs", "handoff_entries",
            "handoff_bytes", "aggregator_failovers", "report_detours",
            "oracle_fallbacks"}) {
        field(*robustness, key, Json::Type::kNumber, "robustness");
      }
      const Json* failover = field(*robustness, "failover_latency_ms",
                                   Json::Type::kObject, "robustness");
      if (failover != nullptr) {
        check_histogram(*failover, "robustness.failover_latency_ms");
      }
    }
    if (schema >= 3) {
      for (const char* key :
           {"hot_arc_splits", "hot_arc_merges", "split_diverted_stores",
            "shed_mbrs", "backpressure_deferrals", "backpressure_drops"}) {
        field(*robustness, key, Json::Type::kNumber, "robustness");
      }
      const Json* imbalance = field(*robustness, "imbalance",
                                    Json::Type::kObject, "robustness");
      if (imbalance != nullptr) {
        field(*imbalance, "message_p99_over_median", Json::Type::kNumber,
              "robustness.imbalance");
        field(*imbalance, "work_p99_over_median", Json::Type::kNumber,
              "robustness.imbalance");
      }
    }
  }

  const Json* timeseries = doc.find("timeseries");  // optional section
  if (timeseries != nullptr) {
    require(timeseries->is_object(), "timeseries: must be an object");
    const Json* window =
        field(*timeseries, "window_ms", Json::Type::kNumber, "timeseries");
    (void)window;
    const Json* series =
        field(*timeseries, "series", Json::Type::kArray, "timeseries");
    if (series != nullptr) {
      for (std::size_t i = 0; i < series->size(); ++i) {
        const Json& entry = (*series)[i];
        require(entry.is_object(), "timeseries.series: entries are objects");
        if (!entry.is_object()) {
          continue;
        }
        field(entry, "name", Json::Type::kString, "timeseries.series");
        const Json* series_kind =
            field(entry, "kind", Json::Type::kString, "timeseries.series");
        if (series_kind != nullptr) {
          const std::string& k = series_kind->as_string();
          require(k == "counter" || k == "gauge" || k == "histogram",
                  "timeseries.series: kind must be counter|gauge|histogram");
        }
      }
    }
  }
}

int check_trace_file(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!std::getline(in, line)) {
    g_errors.push_back("trace.jsonl: empty file");
    return 0;
  }
  std::string error;
  auto header = Json::parse(line, &error);
  require(header.has_value(), "trace.jsonl header: " + error);
  if (header.has_value()) {
    const Json* schema = field(*header, "schema", Json::Type::kString,
                               "trace.jsonl header");
    if (schema != nullptr) {
      require(schema->as_string() == "sdsi.trace.v1",
              "trace.jsonl: schema must be \"sdsi.trace.v1\"");
    }
  }
  int events = 0;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    auto event = Json::parse(line, &error);
    if (!event.has_value()) {
      g_errors.push_back("trace.jsonl line " + std::to_string(line_no) +
                         ": " + error);
      continue;
    }
    const std::string where = "trace.jsonl line " + std::to_string(line_no);
    field(*event, "tid", Json::Type::kNumber, where);
    field(*event, "ev", Json::Type::kString, where);
    field(*event, "t_us", Json::Type::kNumber, where);
    field(*event, "node", Json::Type::kNumber, where);
    ++events;
    if (g_errors.size() > 20) {
      break;  // the report is already damning; stop scanning
    }
  }
  return events;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "make_figures: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

std::string csv_number(const Json& value) {
  return value.dump();  // numbers dump in shortest round-trip form
}

/// `--strategies` mode: BENCH_strategies.json -> strategy_comparison.csv.
int run_strategies_mode(const std::string& json_path, std::string out_dir) {
  std::ifstream in(json_path);
  if (!in) {
    std::fprintf(stderr, "make_figures: cannot read %s\n", json_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  auto doc = Json::parse(buffer.str(), &parse_error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "make_figures: %s: %s\n", json_path.c_str(),
                 parse_error.c_str());
    return 1;
  }

  const Json* version =
      field(*doc, "schema_version", Json::Type::kNumber, "BENCH_strategies");
  require(version == nullptr || version->as_int() == 1,
          "BENCH_strategies: schema_version must be 1");
  const Json* suite =
      field(*doc, "suite", Json::Type::kString, "BENCH_strategies");
  require(suite == nullptr || suite->as_string() == "strategies",
          "BENCH_strategies: suite must be \"strategies\"");
  const Json* rows =
      field(*doc, "benchmarks", Json::Type::kArray, "BENCH_strategies");
  require(rows == nullptr || rows->size() > 0,
          "BENCH_strategies: benchmarks must be non-empty");

  // metric sums per strategy, in first-appearance strategy order.
  const std::vector<std::string> metrics = {
      "recall",      "message_p99_over_median",
      "hops_mbr",    "hops_query",
      "hops_response", "msgs_per_query"};
  std::vector<std::string> strategies;
  std::map<std::string, std::map<std::string, std::pair<double, int>>> sums;
  if (rows != nullptr) {
    for (std::size_t i = 0; i < rows->size(); ++i) {
      const Json& row = (*rows)[i];
      const std::string where =
          "BENCH_strategies row " + std::to_string(i);
      if (!row.is_object()) {
        g_errors.push_back(where + ": must be an object");
        continue;
      }
      const Json* name = field(row, "name", Json::Type::kString, where);
      const Json* config = field(row, "config", Json::Type::kString, where);
      const Json* value =
          field(row, "ops_per_sec", Json::Type::kNumber, where);
      if (name == nullptr || config == nullptr || value == nullptr) {
        continue;
      }
      const std::string& cfg = config->as_string();
      const auto at = cfg.find("strategy=");
      if (at == std::string::npos) {
        g_errors.push_back(where + ": config lacks strategy=");
        continue;
      }
      const std::string strategy =
          cfg.substr(at + 9, cfg.find(' ', at) - (at + 9));
      if (std::find(strategies.begin(), strategies.end(), strategy) ==
          strategies.end()) {
        strategies.push_back(strategy);
      }
      auto& cell = sums[strategy][name->as_string()];
      cell.first += value->as_number();
      cell.second += 1;
    }
  }
  for (const std::string& strategy : strategies) {
    for (const std::string& metric : metrics) {
      require(sums[strategy][metric].second > 0,
              "BENCH_strategies: strategy \"" + strategy +
                  "\" has no \"" + metric + "\" rows");
    }
  }
  require(strategies.size() >= 3,
          "BENCH_strategies: expected all three built-in strategies");

  if (!g_errors.empty()) {
    std::fprintf(stderr, "make_figures: %zu schema violation(s) in %s:\n",
                 g_errors.size(), json_path.c_str());
    for (const std::string& error : g_errors) {
      std::fprintf(stderr, "  - %s\n", error.c_str());
    }
    return 1;
  }

  if (out_dir.empty()) {
    const auto parent = std::filesystem::path(json_path).parent_path();
    out_dir = (parent.empty() ? std::filesystem::path(".") : parent)
                  .string() + "/figures";
  }
  std::filesystem::create_directories(out_dir);

  std::string csv = "strategy";
  for (const std::string& metric : metrics) {
    csv += "," + metric;
  }
  csv += "\n";
  std::printf("| strategy |");
  for (const std::string& metric : metrics) {
    std::printf(" %s |", metric.c_str());
  }
  std::printf("\n|---|");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::printf("---|");
  }
  std::printf("\n");
  for (const std::string& strategy : strategies) {
    csv += strategy;
    std::printf("| %s |", strategy.c_str());
    for (const std::string& metric : metrics) {
      const auto& [sum, count] = sums[strategy][metric];
      char num[64];
      std::snprintf(num, sizeof(num), "%.4g", sum / count);
      csv += std::string(",") + num;
      std::printf(" %s |", num);
    }
    csv += "\n";
    std::printf("\n");
  }
  if (!write_file(out_dir + "/strategy_comparison.csv", csv)) {
    return 1;
  }
  std::printf(
      "make_figures: %s valid; wrote %s/strategy_comparison.csv "
      "(%zu strategies, seed-averaged)\n",
      json_path.c_str(), out_dir.c_str(), strategies.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string run_dir;
  std::string out_dir;
  std::string strategies_json;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--strategies" && i + 1 < argc) {
      strategies_json = argv[++i];
    } else if (run_dir.empty() && !arg.empty() && arg[0] != '-') {
      run_dir = arg;
    } else {
      std::fprintf(stderr,
                   "usage: %s <run-dir> [--out DIR]\n"
                   "       %s --strategies BENCH_strategies.json [--out DIR]\n",
                   argv[0], argv[0]);
      return 2;
    }
  }
  if (!strategies_json.empty()) {
    return run_strategies_mode(strategies_json, out_dir);
  }
  if (run_dir.empty()) {
    std::fprintf(stderr,
                 "usage: %s <run-dir> [--out DIR]\n"
                 "       %s --strategies BENCH_strategies.json [--out DIR]\n",
                 argv[0], argv[0]);
    return 2;
  }
  if (out_dir.empty()) {
    out_dir = run_dir + "/figures";
  }

  const std::string metrics_path = run_dir + "/metrics.json";
  std::ifstream in(metrics_path);
  if (!in) {
    std::fprintf(stderr, "make_figures: cannot read %s\n",
                 metrics_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  auto doc = Json::parse(buffer.str(), &parse_error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "make_figures: %s: %s\n", metrics_path.c_str(),
                 parse_error.c_str());
    return 1;
  }

  check_metrics_schema(*doc);

  int trace_events = 0;
  const std::string trace_path = run_dir + "/trace.jsonl";
  const bool have_trace = std::filesystem::exists(trace_path);
  if (have_trace) {
    trace_events = check_trace_file(trace_path);
  }

  if (!g_errors.empty()) {
    std::fprintf(stderr,
                 "make_figures: %zu schema violation(s) in %s:\n",
                 g_errors.size(), run_dir.c_str());
    for (const std::string& error : g_errors) {
      std::fprintf(stderr, "  - %s\n", error.c_str());
    }
    return 1;
  }

  std::filesystem::create_directories(out_dir);

  // Fig 6(a): load decomposition.
  {
    std::string csv = "component,msgs_per_node_per_sec\n";
    const Json& per_component = *doc->find("load")->find("per_component");
    for (const auto& [name, rate] : per_component.members()) {
      csv += name + "," + csv_number(rate) + "\n";
    }
    csv += "total," + csv_number(*doc->find("load")->find("total")) + "\n";
    if (!write_file(out_dir + "/fig6a_load.csv", csv)) {
      return 1;
    }
  }

  // Fig 6(b): per-node load rates.
  {
    std::string csv = "node,msgs_per_sec\n";
    const Json& per_node = *doc->find("load")->find("per_node_total");
    for (std::size_t i = 0; i < per_node.size(); ++i) {
      csv += std::to_string(i) + "," + csv_number(per_node[i]) + "\n";
    }
    if (!write_file(out_dir + "/fig6b_distribution.csv", csv)) {
      return 1;
    }
  }

  // Fig 7: overhead per input event.
  {
    std::string csv = "component,messages_per_event\n";
    for (const auto& [name, value] : doc->find("overhead")->members()) {
      csv += name + "," + csv_number(value) + "\n";
    }
    if (!write_file(out_dir + "/fig7_overhead.csv", csv)) {
      return 1;
    }
  }

  // Fig 8: hops per message type.
  {
    std::string csv = "type,hops\n";
    for (const auto& [name, value] : doc->find("hops")->members()) {
      csv += name + "," + csv_number(value) + "\n";
    }
    if (!write_file(out_dir + "/fig8_hops.csv", csv)) {
      return 1;
    }
  }

  // Heal-latency distribution (meaningful for chaos runs; header-only
  // otherwise so downstream plotting never special-cases the file away).
  {
    std::string csv = "bucket_low_ms,bucket_high_ms,count\n";
    const Json& buckets =
        *doc->find("robustness")->find("heal_latency_ms")->find("buckets");
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      csv += csv_number(buckets[i][0]) + "," + csv_number(buckets[i][1]) +
             "," + csv_number(buckets[i][2]) + "\n";
    }
    if (!write_file(out_dir + "/heal_latency_hist.csv", csv)) {
      return 1;
    }
  }

  // Adversarial-skew figure (v3 runs): per-node index work next to the
  // per-node message load, plus the two summary imbalance ratios — the
  // quantities the hot-arc mitigation is judged on (BENCH_skew.json).
  int tables = 6;
  if (doc->find("schema_version")->as_int() >= 3) {
    std::string csv = "node,msgs_per_sec,work_units\n";
    const Json& per_node = *doc->find("load")->find("per_node_total");
    const Json& per_work = *doc->find("load")->find("per_node_work");
    for (std::size_t i = 0; i < per_node.size(); ++i) {
      csv += std::to_string(i) + "," + csv_number(per_node[i]) + "," +
             csv_number(per_work[i]) + "\n";
    }
    const Json& imbalance = *doc->find("robustness")->find("imbalance");
    csv += "p99_over_median," +
           csv_number(*imbalance.find("message_p99_over_median")) + "," +
           csv_number(*imbalance.find("work_p99_over_median")) + "\n";
    if (!write_file(out_dir + "/skew_work.csv", csv)) {
      return 1;
    }
    ++tables;
  }

  // Every windowed series, long format (window start in ms so plotting
  // needs no knowledge of the window width).
  int series_count = 0;
  {
    std::string csv = "window_start_ms,series,value\n";
    const Json* timeseries = doc->find("timeseries");
    if (timeseries != nullptr) {
      const double window_ms = timeseries->find("window_ms")->as_number();
      const Json& series = *timeseries->find("series");
      for (std::size_t i = 0; i < series.size(); ++i) {
        const Json& entry = series[i];
        const std::string& name = entry.find("name")->as_string();
        const std::string& kind = entry.find("kind")->as_string();
        const auto emit_points = [&](const Json* points,
                                     const std::string& label) {
          if (points == nullptr) {
            return;
          }
          for (std::size_t p = 0; p < points->size(); ++p) {
            const double start = (*points)[p][0].as_number() * window_ms;
            csv += csv_number(Json(start)) + "," + label + "," +
                   csv_number((*points)[p][1]) + "\n";
          }
        };
        if (kind == "histogram") {
          emit_points(entry.find("count_points"), name + ".count");
          emit_points(entry.find("sum_points"), name + ".sum");
        } else {
          emit_points(entry.find("points"), name);
        }
        ++series_count;
      }
    }
    if (!write_file(out_dir + "/timeseries.csv", csv)) {
      return 1;
    }
  }

  std::printf(
      "make_figures: %s valid (schema v%lld); wrote %d tables to %s "
      "(%d series%s)\n",
      metrics_path.c_str(),
      static_cast<long long>(doc->find("schema_version")->as_int()), tables,
      out_dir.c_str(), series_count,
      have_trace
          ? (", trace.jsonl valid, " + std::to_string(trace_events) +
             " events")
                .c_str()
          : "");
  return 0;
}
