// sdsi_node: one ring member as a real OS process — the paper's data center
// daemon, speaking wire protocol v1 over TCP (docs/WIRE_FORMAT.md).
//
// N processes rendezvous through a shared directory (port files, then named
// phase barriers), derive the identical ring from (nodes, bits, salt), run
// the deterministic net workload (src/net/workload.hpp), and each write
// their client-side results as JSON. tools/net_equiv launches a set of
// these and compares the merged digests against the simulated middleware.
//
// Phase structure (every phase ends with flush + barrier + settle):
//   1. subscribe own queries, publish own streams   (content traffic)
//   2. tick: match + push responses                 (response traffic)
//   3. straggler tick: catches anything that raced past phase 2 — store
//      and client dedup make it a no-op when nothing did
//   4. (--reliable + --converge-ms) convergence: keep polling, heartbeating
//      and retransmitting under a fixed logical clock until the healing
//      layers have had time to repair whatever chaos broke
//   5. write out.<i>.json, final barrier, exit 0
//
// The logical clock is phase-fixed (ingest at t=0, ticks at t=1s/t=2s) and
// lifespans are hours, so the matched sets are timing-independent — the
// property the equivalence gate rests on.
//
// Chaos mode (docs/EXPERIMENTS.md "chaos on a real ring"): the --fault-*
// flags wrap the socket transport in a seeded net::FaultyTransport, and
// --reliable switches on the NetNode self-healing stack (heartbeat failure
// detection, acked publications with retransmit, soft-state refresh,
// successor replication, anti-entropy). --port/--epoch let a supervisor
// SIGKILL a member and restart it on the same address with a bumped epoch,
// which peers detect through heartbeats and answer with repair traffic.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/strategy.hpp"
#include "fault/model.hpp"
#include "net/faulty_transport.hpp"
#include "net/node.hpp"
#include "net/socket_transport.hpp"
#include "net/workload.hpp"
#include "obs/json.hpp"
#include "routing/static_ring.hpp"

namespace fs = std::filesystem;
using namespace sdsi;

namespace {

struct Options {
  NodeIndex index = 0;
  std::uint32_t nodes = 0;
  std::string dir;
  net::WorkloadConfig workload;
  std::uint16_t port = 0;     // 0: ephemeral; fixed for restart-in-place
  std::uint64_t epoch = 0;    // bumped by the supervisor on each restart
  bool reliable = false;
  int converge_ms = 0;
  fault::FaultPlan faults;
  std::uint64_t fault_seed = 0;
  bool fault_seed_set = false;
};

[[noreturn]] void usage_and_exit(const char* argv0, std::FILE* out = stderr,
                                 int code = 2) {
  std::fprintf(
      out,
      "usage: %s --index I --nodes N --dir RENDEZVOUS_DIR "
      "[--seed S] [--samples K] [--streams-per-node M]\n"
      "  [--strategy dft|ecm|lsh] [--port P] [--epoch E] [--reliable]\n"
      "  [--converge-ms MS]\n"
      "  [--fault-uniform P] [--fault-burst RATE] [--fault-jitter-ms MS]\n"
      "  [--fault-reorder P] [--fault-corrupt P] [--fault-seed S]\n",
      argv0);
  std::exit(code);
}

Options parse_args(int argc, char** argv) {
  Options opts;
  bool have_index = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage_and_exit(argv[0], stdout, 0);
    } else if (arg == "--index") {
      opts.index = static_cast<NodeIndex>(std::stoul(next()));
      have_index = true;
    } else if (arg == "--nodes") {
      opts.nodes = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--dir") {
      opts.dir = next();
    } else if (arg == "--seed") {
      opts.workload.seed = std::stoull(next());
    } else if (arg == "--samples") {
      opts.workload.samples_per_stream =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--streams-per-node") {
      opts.workload.streams_per_node =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--strategy") {
      const auto kind = core::parse_strategy(next());
      if (!kind.has_value()) usage_and_exit(argv[0]);
      opts.workload.strategy.kind = *kind;
    } else if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (arg == "--epoch") {
      opts.epoch = std::stoull(next());
    } else if (arg == "--reliable") {
      opts.reliable = true;
    } else if (arg == "--converge-ms") {
      opts.converge_ms = std::stoi(next());
    } else if (arg == "--fault-uniform") {
      opts.faults.uniform_loss = std::stod(next());
    } else if (arg == "--fault-burst") {
      // Stationary loss target: solve the Gilbert-Elliott chain for
      // p_good_to_bad at the default recovery rate (mean burst length 4).
      const double rate = std::stod(next());
      SDSI_CHECK(rate >= 0.0 && rate < 1.0);
      if (rate > 0.0) {
        fault::GilbertElliottParams ge;
        ge.p_bad_to_good = 0.25;
        ge.p_good_to_bad = rate * ge.p_bad_to_good / (1.0 - rate);
        opts.faults.burst_loss = ge;
      }
    } else if (arg == "--fault-jitter-ms") {
      const int ms = std::stoi(next());
      if (ms > 0) {
        opts.faults.jitter = fault::LatencyJitter{sim::Duration::millis(ms)};
      }
    } else if (arg == "--fault-reorder") {
      opts.faults.reorder = std::stod(next());
    } else if (arg == "--fault-corrupt") {
      opts.faults.corrupt = std::stod(next());
    } else if (arg == "--fault-seed") {
      opts.fault_seed = std::stoull(next());
      opts.fault_seed_set = true;
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (!have_index || opts.nodes == 0 || opts.dir.empty() ||
      opts.index >= opts.nodes) {
    usage_and_exit(argv[0]);
  }
  opts.workload.nodes = opts.nodes;
  if (!opts.fault_seed_set) {
    // Per-endpoint stream: same drill seed, distinct per-node fault draws.
    opts.fault_seed = opts.workload.seed ^
                      (0x9e3779b97f4a7c15ull * (opts.index + 1)) ^
                      (opts.epoch << 56);
  }
  return opts;
}

/// Atomic small-file publication: peers only ever see complete contents.
void write_file_atomic(const fs::path& path, const std::string& contents) {
  const fs::path tmp = path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    SDSI_CHECK(out.is_open());
    out << contents;
  }
  fs::rename(tmp, path);
}

/// One I/O pump step: drive the (possibly fault-wrapped) transport and, in
/// reliable mode, the node's heartbeat/retransmit clocks.
using PumpFn = std::function<void(int budget_ms)>;

/// Polls while waiting for every process to publish `name.J`.
void barrier(const PumpFn& pump, const Options& opts,
             const std::string& name) {
  write_file_atomic(fs::path(opts.dir) / (name + "." +
                                          std::to_string(opts.index)),
                    "1");
  while (true) {
    bool all = true;
    for (std::uint32_t j = 0; j < opts.nodes; ++j) {
      if (!fs::exists(fs::path(opts.dir) /
                      (name + "." + std::to_string(j)))) {
        all = false;
        break;
      }
    }
    if (all) return;
    pump(5);
  }
}

/// Drives I/O until every queued frame reached the kernel (including frames
/// parked in the fault layer's delay queue) AND the ring looks settled. In
/// plain mode "settled" means no new frame arrived for `quiet_ms` — on a
/// localhost ring that bounds the full range-forwarding chain by orders of
/// magnitude. In reliable mode the ring is NEVER frame-quiet (heartbeats
/// every 50 ms from every peer, periodic anti-entropy digests), so settle
/// instead pumps for a fixed `quiet_ms` budget and then only insists the
/// outbound queues drained; actual convergence is the converge phase's job.
void settle(const PumpFn& pump, net::SocketTransport& socket,
            const net::FaultyTransport* faulty, bool periodic_traffic,
            int quiet_ms) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(quiet_ms);
  std::uint64_t seen = socket.stats().frames_received;
  auto last_change = Clock::now();
  while (true) {
    pump(5);
    if (socket.stats().frames_received != seen) {
      seen = socket.stats().frames_received;
      last_change = Clock::now();
    }
    const bool drained =
        socket.pending_out_bytes() == 0 &&
        (faulty == nullptr || faulty->pending_delayed() == 0);
    if (!drained) {
      continue;
    }
    if (periodic_traffic) {
      if (Clock::now() >= deadline) return;
    } else if (Clock::now() - last_change >
               std::chrono::milliseconds(quiet_ms)) {
      return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);
  const net::WorkloadConfig& workload = opts.workload;
  const common::IdSpace space(workload.id_bits);

  net::SocketTransport socket(opts.port);
  socket.set_backoff_seed(opts.fault_seed ^ 0xb0ffull);
  std::optional<net::FaultyTransport> faulty;
  if (opts.faults.has_link_faults()) {
    faulty.emplace(socket, opts.faults, space, opts.fault_seed);
  }
  net::Transport& transport = faulty ? static_cast<net::Transport&>(*faulty)
                                     : socket;
  write_file_atomic(fs::path(opts.dir) /
                        ("port." + std::to_string(opts.index)),
                    std::to_string(socket.listen_port()) + "\n");

  // Address book: wait for every peer's port file.
  for (std::uint32_t j = 0; j < opts.nodes; ++j) {
    if (j == opts.index) continue;
    const fs::path path = fs::path(opts.dir) / ("port." + std::to_string(j));
    while (!fs::exists(path)) {
      transport.poll(5);
    }
    std::ifstream in(path);
    std::uint32_t port = 0;
    in >> port;
    SDSI_CHECK(port > 0 && port <= 0xFFFF);
    socket.set_peer(j, "127.0.0.1", static_cast<std::uint16_t>(port));
  }

  net::NetRing ring(space, routing::hash_node_ids(opts.nodes, space,
                                                  workload.ring_salt));
  net::NetNodeConfig node_config;
  node_config.features = workload.features;
  node_config.strategy = workload.strategy;
  node_config.reliability.enabled = opts.reliable;
  node_config.epoch = opts.epoch;
  net::NetNode node(ring, opts.index, transport, node_config);

  // Phase-fixed logical clock (see header comment).
  sim::SimTime logical_now = sim::SimTime::from_micros(0);
  transport.set_deliver([&node, &logical_now](routing::Message&& msg) {
    node.deliver(std::move(msg), logical_now);
  });

  // Monotone wall clock for the failure detector and retransmit timers.
  const auto started = std::chrono::steady_clock::now();
  const auto wall_ms = [&started]() -> std::int64_t {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - started)
        .count();
  };
  const PumpFn pump = [&](int budget_ms) {
    transport.poll(budget_ms);
    if (opts.reliable) {
      node.heartbeat_tick(wall_ms(), logical_now);
      node.reliability_tick(wall_ms(), logical_now);
    }
  };

  if (opts.reliable && opts.epoch > 0) {
    // Restarted in place: ask the live neighbors for the arc we own.
    node.request_handoff(logical_now);
  }

  // --- Phase 1: content traffic ------------------------------------------
  // Query features come from the same strategy the nodes index with, so the
  // socket leg matches the sim reference for every --strategy.
  const auto strategy = core::IndexingStrategy::make(workload.strategy,
                                                     workload.features, space);
  for (const net::WorkloadQuery& query : net::workload_queries(workload)) {
    if (query.client != opts.index) continue;
    node.subscribe_similarity(
        query.id, strategy->features_from_window(query.window), query.radius,
        sim::Duration::seconds(3600), logical_now);
  }
  for (std::uint32_t slot = 0; slot < workload.streams_per_node; ++slot) {
    const StreamId stream =
        net::workload_stream_id(workload, opts.index, slot);
    std::uint32_t fed = 0;
    for (const Sample value : net::workload_samples(workload, stream)) {
      node.publish_value(stream, value, logical_now);
      if (++fed % 64 == 0) pump(0);  // keep draining inbound
    }
  }
  settle(pump, socket, faulty ? &*faulty : nullptr, opts.reliable, 300);
  barrier(pump, opts, "sent");
  settle(pump, socket, faulty ? &*faulty : nullptr, opts.reliable, 300);

  // --- Phase 2: match + respond ------------------------------------------
  logical_now = sim::SimTime::from_micros(1'000'000);
  node.tick(logical_now);
  settle(pump, socket, faulty ? &*faulty : nullptr, opts.reliable, 300);
  barrier(pump, opts, "tick1");
  settle(pump, socket, faulty ? &*faulty : nullptr, opts.reliable, 300);

  // --- Phase 3: straggler sweep ------------------------------------------
  logical_now = sim::SimTime::from_micros(2'000'000);
  node.tick(logical_now);
  settle(pump, socket, faulty ? &*faulty : nullptr, opts.reliable, 300);
  barrier(pump, opts, "tick2");
  settle(pump, socket, faulty ? &*faulty : nullptr, opts.reliable, 300);

  // --- Phase 4: convergence under chaos -----------------------------------
  // The logical clock stays at t=2s (lifespans are hours, so nothing
  // expires); wall time keeps moving, driving retransmits, refresh and
  // anti-entropy until the healing layers run out of gaps to close.
  if (opts.reliable && opts.converge_ms > 0) {
    using Clock = std::chrono::steady_clock;
    const auto until =
        Clock::now() + std::chrono::milliseconds(opts.converge_ms);
    auto last_match = Clock::now();
    while (Clock::now() < until) {
      pump(5);
      if (Clock::now() - last_match > std::chrono::milliseconds(100)) {
        node.tick(logical_now);
        last_match = Clock::now();
      }
    }
    node.tick(logical_now);
    settle(pump, socket, faulty ? &*faulty : nullptr, opts.reliable, 300);
    barrier(pump, opts, "conv");
    node.tick(logical_now);
    settle(pump, socket, faulty ? &*faulty : nullptr, opts.reliable, 300);
  }

  // --- Phase 5: report ----------------------------------------------------
  obs::Json doc = obs::Json::object();
  doc["index"] = static_cast<std::uint64_t>(opts.index);
  doc["epoch"] = opts.epoch;
  doc["listen_port"] = static_cast<std::uint64_t>(socket.listen_port());
  obs::Json results = obs::Json::object();
  for (const auto& [query, streams] : node.results()) {
    obs::Json arr = obs::Json::array();
    for (const StreamId stream : streams) {
      arr.push_back(stream);
    }
    results[std::to_string(query)] = std::move(arr);
  }
  doc["results"] = std::move(results);
  obs::Json counters = obs::Json::object();
  const net::NetNode::Counters& c = node.counters();
  counters["mbrs_published"] = c.mbrs_published;
  counters["queries_posed"] = c.queries_posed;
  counters["mbrs_stored"] = c.mbrs_stored;
  counters["subscriptions_stored"] = c.subscriptions_stored;
  counters["responses_sent"] = c.responses_sent;
  counters["send_failures"] = c.send_failures;
  if (opts.reliable) {
    counters["heartbeats_sent"] = c.heartbeats_sent;
    counters["heartbeats_received"] = c.heartbeats_received;
    counters["detours"] = c.detours;
    counters["mbr_acks_sent"] = c.mbr_acks_sent;
    counters["mbr_acks_received"] = c.mbr_acks_received;
    counters["mbr_retransmits"] = c.mbr_retransmits;
    counters["refresh_rounds"] = c.refresh_rounds;
    counters["mbr_refreshes"] = c.mbr_refreshes;
    counters["query_refreshes"] = c.query_refreshes;
    counters["response_retransmits"] = c.response_retransmits;
    counters["response_acks_sent"] = c.response_acks_sent;
    counters["response_acks_received"] = c.response_acks_received;
    counters["replica_puts_sent"] = c.replica_puts_sent;
    counters["replica_entries_stored"] = c.replica_entries_stored;
    counters["anti_entropy_rounds"] = c.anti_entropy_rounds;
    counters["anti_entropy_requests"] = c.anti_entropy_requests;
    counters["repair_entries_sent"] = c.repair_entries_sent;
    counters["handoff_requests_sent"] = c.handoff_requests_sent;
    counters["handoff_entries_sent"] = c.handoff_entries_sent;
    obs::Json det = obs::Json::object();
    det["suspects"] = node.detector().counters().suspects;
    det["false_suspicions"] = node.detector().counters().false_suspicions;
    det["deaths"] = node.detector().counters().deaths;
    det["recoveries"] = node.detector().counters().recoveries;
    det["rejoins"] = node.detector().counters().rejoins;
    doc["detector"] = std::move(det);
  }
  doc["counters"] = std::move(counters);
  obs::Json wire = obs::Json::object();
  wire["frames_sent"] = socket.stats().frames_sent;
  wire["frames_received"] = socket.stats().frames_received;
  wire["bytes_sent"] = socket.stats().bytes_sent;
  wire["bytes_received"] = socket.stats().bytes_received;
  wire["decode_rejects"] = socket.stats().decode_rejects;
  wire["dropped_overflow"] = socket.stats().dropped_overflow;
  wire["connects"] = socket.stats().connects;
  wire["reconnect_attempts"] = socket.stats().reconnect_attempts;
  doc["transport"] = std::move(wire);
  if (faulty) {
    const net::FaultyTransportStats& f = faulty->stats();
    obs::Json fj = obs::Json::object();
    fj["offered"] = f.offered;
    fj["forwarded"] = f.forwarded;
    fj["dropped_uniform"] = f.dropped_uniform;
    fj["dropped_burst"] = f.dropped_burst;
    fj["dropped_partition"] = f.dropped_partition;
    fj["corrupted"] = f.corrupted;
    fj["delayed"] = f.delayed;
    fj["reordered"] = f.reordered;
    fj["forward_failures"] = f.forward_failures;
    fj["pending_delayed"] =
        static_cast<std::uint64_t>(faulty->pending_delayed());
    doc["faults"] = std::move(fj);
  }
  // Every transport-level loss at this endpoint, keyed by the canonical
  // DropCause slugs (docs/OBSERVABILITY.md): injected causes from the fault
  // layer, endpoint causes from the socket.
  {
    auto drops = socket.drops_by_cause();
    if (faulty) {
      const auto injected = faulty->stats().drops_by_cause();
      for (std::size_t i = 0; i < drops.size(); ++i) {
        drops[i] += injected[i];
      }
    }
    obs::Json dj = obs::Json::object();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(fault::DropCause::kCount); ++i) {
      dj[fault::drop_cause_slug(static_cast<fault::DropCause>(i))] = drops[i];
    }
    doc["drops"] = std::move(dj);
  }
  write_file_atomic(fs::path(opts.dir) /
                        ("out." + std::to_string(opts.index) + ".json"),
                    doc.dump(2) + "\n");

  barrier(pump, opts, "done");
  return 0;
}
