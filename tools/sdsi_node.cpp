// sdsi_node: one ring member as a real OS process — the paper's data center
// daemon, speaking wire protocol v1 over TCP (docs/WIRE_FORMAT.md).
//
// N processes rendezvous through a shared directory (port files, then named
// phase barriers), derive the identical ring from (nodes, bits, salt), run
// the deterministic net workload (src/net/workload.hpp), and each write
// their client-side results as JSON. tools/net_equiv launches a set of
// these and compares the merged digests against the simulated middleware.
//
// Phase structure (every phase ends with flush + barrier + settle):
//   1. subscribe own queries, publish own streams   (content traffic)
//   2. tick: match + push responses                 (response traffic)
//   3. straggler tick: catches anything that raced past phase 2 — store
//      and client dedup make it a no-op when nothing did
//   4. write out.<i>.json, final barrier, exit 0
//
// The logical clock is phase-fixed (ingest at t=0, ticks at t=1s/t=2s) and
// lifespans are hours, so the matched sets are timing-independent — the
// property the equivalence gate rests on.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "net/node.hpp"
#include "net/socket_transport.hpp"
#include "net/workload.hpp"
#include "obs/json.hpp"
#include "routing/static_ring.hpp"

namespace fs = std::filesystem;
using namespace sdsi;

namespace {

struct Options {
  NodeIndex index = 0;
  std::uint32_t nodes = 0;
  std::string dir;
  net::WorkloadConfig workload;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --index I --nodes N --dir RENDEZVOUS_DIR "
               "[--seed S] [--samples K] [--streams-per-node M]\n",
               argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opts;
  bool have_index = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--index") {
      opts.index = static_cast<NodeIndex>(std::stoul(next()));
      have_index = true;
    } else if (arg == "--nodes") {
      opts.nodes = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--dir") {
      opts.dir = next();
    } else if (arg == "--seed") {
      opts.workload.seed = std::stoull(next());
    } else if (arg == "--samples") {
      opts.workload.samples_per_stream =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--streams-per-node") {
      opts.workload.streams_per_node =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (!have_index || opts.nodes == 0 || opts.dir.empty() ||
      opts.index >= opts.nodes) {
    usage_and_exit(argv[0]);
  }
  opts.workload.nodes = opts.nodes;
  return opts;
}

/// Atomic small-file publication: peers only ever see complete contents.
void write_file_atomic(const fs::path& path, const std::string& contents) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    SDSI_CHECK(out.is_open());
    out << contents;
  }
  fs::rename(tmp, path);
}

/// Polls the transport while waiting for every process to publish `name.J`.
void barrier(net::SocketTransport& transport, const Options& opts,
             const std::string& name) {
  write_file_atomic(fs::path(opts.dir) / (name + "." +
                                          std::to_string(opts.index)),
                    "1");
  while (true) {
    bool all = true;
    for (std::uint32_t j = 0; j < opts.nodes; ++j) {
      if (!fs::exists(fs::path(opts.dir) /
                      (name + "." + std::to_string(j)))) {
        all = false;
        break;
      }
    }
    if (all) return;
    transport.poll(5);
  }
}

/// Drives I/O until every queued frame reached the kernel AND no new frame
/// has arrived for `quiet_ms`. On a localhost ring this bounds the full
/// range-forwarding chain by orders of magnitude.
void settle(net::SocketTransport& transport, int quiet_ms) {
  using Clock = std::chrono::steady_clock;
  std::uint64_t seen = transport.stats().frames_received;
  auto last_change = Clock::now();
  while (true) {
    transport.poll(5);
    if (transport.stats().frames_received != seen) {
      seen = transport.stats().frames_received;
      last_change = Clock::now();
    }
    if (transport.pending_out_bytes() == 0 &&
        Clock::now() - last_change > std::chrono::milliseconds(quiet_ms)) {
      return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);
  const net::WorkloadConfig& workload = opts.workload;

  net::SocketTransport transport(0);
  write_file_atomic(fs::path(opts.dir) /
                        ("port." + std::to_string(opts.index)),
                    std::to_string(transport.listen_port()) + "\n");

  // Address book: wait for every peer's port file.
  for (std::uint32_t j = 0; j < opts.nodes; ++j) {
    if (j == opts.index) continue;
    const fs::path path = fs::path(opts.dir) / ("port." + std::to_string(j));
    while (!fs::exists(path)) {
      transport.poll(5);
    }
    std::ifstream in(path);
    std::uint32_t port = 0;
    in >> port;
    SDSI_CHECK(port > 0 && port <= 0xFFFF);
    transport.set_peer(j, "127.0.0.1", static_cast<std::uint16_t>(port));
  }

  const common::IdSpace space(workload.id_bits);
  net::NetRing ring(space, routing::hash_node_ids(opts.nodes, space,
                                                  workload.ring_salt));
  net::NetNodeConfig node_config;
  node_config.features = workload.features;
  net::NetNode node(ring, opts.index, transport, node_config);

  // Phase-fixed logical clock (see header comment).
  sim::SimTime logical_now = sim::SimTime::from_micros(0);
  transport.set_deliver([&node, &logical_now](routing::Message&& msg) {
    node.deliver(std::move(msg), logical_now);
  });

  // --- Phase 1: content traffic ------------------------------------------
  for (const net::WorkloadQuery& query : net::workload_queries(workload)) {
    if (query.client != opts.index) continue;
    node.subscribe_similarity(
        query.id, dsp::extract_features(query.window, workload.features),
        query.radius, sim::Duration::seconds(3600), logical_now);
  }
  for (std::uint32_t slot = 0; slot < workload.streams_per_node; ++slot) {
    const StreamId stream =
        net::workload_stream_id(workload, opts.index, slot);
    std::uint32_t fed = 0;
    for (const Sample value : net::workload_samples(workload, stream)) {
      node.publish_value(stream, value, logical_now);
      if (++fed % 64 == 0) transport.poll(0);  // keep draining inbound
    }
  }
  settle(transport, 300);
  barrier(transport, opts, "sent");
  settle(transport, 300);

  // --- Phase 2: match + respond ------------------------------------------
  logical_now = sim::SimTime::from_micros(1'000'000);
  node.tick(logical_now);
  settle(transport, 300);
  barrier(transport, opts, "tick1");
  settle(transport, 300);

  // --- Phase 3: straggler sweep ------------------------------------------
  logical_now = sim::SimTime::from_micros(2'000'000);
  node.tick(logical_now);
  settle(transport, 300);
  barrier(transport, opts, "tick2");
  settle(transport, 300);

  // --- Phase 4: report ----------------------------------------------------
  obs::Json doc = obs::Json::object();
  doc["index"] = static_cast<std::uint64_t>(opts.index);
  doc["listen_port"] = static_cast<std::uint64_t>(transport.listen_port());
  obs::Json results = obs::Json::object();
  for (const auto& [query, streams] : node.results()) {
    obs::Json arr = obs::Json::array();
    for (const StreamId stream : streams) {
      arr.push_back(stream);
    }
    results[std::to_string(query)] = std::move(arr);
  }
  doc["results"] = std::move(results);
  obs::Json counters = obs::Json::object();
  counters["mbrs_published"] = node.counters().mbrs_published;
  counters["queries_posed"] = node.counters().queries_posed;
  counters["mbrs_stored"] = node.counters().mbrs_stored;
  counters["subscriptions_stored"] = node.counters().subscriptions_stored;
  counters["responses_sent"] = node.counters().responses_sent;
  counters["send_failures"] = node.counters().send_failures;
  doc["counters"] = std::move(counters);
  obs::Json wire = obs::Json::object();
  wire["frames_sent"] = transport.stats().frames_sent;
  wire["frames_received"] = transport.stats().frames_received;
  wire["bytes_sent"] = transport.stats().bytes_sent;
  wire["bytes_received"] = transport.stats().bytes_received;
  wire["decode_rejects"] = transport.stats().decode_rejects;
  wire["reconnect_attempts"] = transport.stats().reconnect_attempts;
  doc["transport"] = std::move(wire);
  write_file_atomic(fs::path(opts.dir) /
                        ("out." + std::to_string(opts.index) + ".json"),
                    doc.dump(2) + "\n");

  barrier(transport, opts, "done");
  return 0;
}
