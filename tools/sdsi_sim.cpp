// sdsi_sim — command-line driver for the Section V experiment harness.
//
// Runs one full simulation with the Table I workload and prints the
// Fig 6(a) load decomposition, Fig 7 overheads, Fig 8 hops, and the quality
// summary, so a configuration can be explored without writing C++.
//
//   sdsi_sim [--nodes N] [--radius R] [--seed S] [--substrate chord|prefix|ideal]
//            [--multicast seq|bidir] [--beta B] [--window W] [--coeffs K]
//            [--warmup SECONDS] [--measure SECONDS] [--query-rate Q]
//            [--adaptive-precision] [--loss P]
//            [--burst-loss P] [--crash-wave F] [--jitter MS]
//            [--mbr-acks] [--response-acks] [--mbr-refresh S]
//            [--query-refresh S] [--replication-factor R]
//            [--anti-entropy-period S] [--threads N] [--oracle S] [--drain S]
//            [--adversarial] [--zipf S] [--pattern-pool N] [--zipf-clients]
//            [--placement-skew S] [--flash-crowd T] [--overload]
//            [--overload-window MS] [--split-ways N] [--ingest-capacity N]
//            [--shed-rate P] [--publish-budget N] [--defer-capacity N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_common.hpp"
#include "core/report_render.hpp"
#include "net/wire_shadow.hpp"

namespace {

using namespace sdsi;

[[noreturn]] void usage(const char* argv0, std::FILE* out = stderr,
                        int code = 2) {
  std::fprintf(
      out,
      "usage: %s [options]\n"
      "  --nodes N            data centers (default 100)\n"
      "  --radius R           similarity query radius (default 0.1)\n"
      "  --seed S             master seed (default 42)\n"
      "  --substrate KIND     chord | prefix | ideal (default chord)\n"
      "  --strategy KIND      dft | ecm | lsh indexing strategy (default dft;\n"
      "                       see docs/STRATEGIES.md)\n"
      "  --multicast KIND     seq | bidir (default seq)\n"
      "  --beta B             MBR batch size (default 5)\n"
      "  --window W           sliding window length (default 256)\n"
      "  --coeffs K           retained coefficients (default 2)\n"
      "  --synopsis KIND      dft | haar (default dft)\n"
      "  --warmup SECONDS     warm-up before measuring (default 80)\n"
      "  --measure SECONDS    measurement window (default 60)\n"
      "  --query-rate Q       queries per second (default 2)\n"
      "  --family KIND        walk | stock | hostload (default walk)\n"
      "  --adaptive-precision enable the Sec VI-A closed loop\n"
      "  --loss P             message loss probability (default 0)\n"
      "  --burst-loss P       Gilbert-Elliott bursty loss, stationary rate P\n"
      "  --crash-wave F       crash fraction F at warmup+10s, recover 20s later\n"
      "  --jitter MS          per-transmission latency jitter, uniform [0,MS]\n"
      "  --mbr-acks           acked MBR publication with retry/backoff\n"
      "  --response-acks      acked match pushes with retransmission\n"
      "  --mbr-refresh S      soft-state MBR re-routing period (0 = off)\n"
      "  --query-refresh S    subscription refresh period (0 = off)\n"
      "  --replication-factor R  mirror stores to R successors (0 = off)\n"
      "  --anti-entropy-period S digest exchange period (0 = off)\n"
      "  --threads N          worker lanes for match/ingest (1 = serial,\n"
      "                       0 = hardware concurrency; results identical)\n"
      "  --heap-queue         run on the legacy binary-heap scheduler\n"
      "                       (same results, pre-calendar performance;\n"
      "                       equivalent to SDSI_SIM_HEAP_QUEUE=1)\n"
      "  --adversarial        skewed workload with defaults (Zipf pattern\n"
      "                       pool; see --zipf/--pattern-pool)\n"
      "  --zipf S             Zipf exponent for pattern/client skew\n"
      "                       (default 1.1; implies --adversarial)\n"
      "  --pattern-pool N     query patterns drawn from N Zipf-popular bases\n"
      "                       (0 = fresh pattern per query)\n"
      "  --zipf-clients       Zipf-skewed query client placement\n"
      "  --placement-skew S   non-uniform node ids (u^S; 0 = uniform hash)\n"
      "  --flash-crowd T      sector-correlated flash crowd at T seconds\n"
      "                       (stock family only; implies --adversarial)\n"
      "  --overload           overload control with defaults (hot-arc\n"
      "                       detector + 3-way splitting)\n"
      "  --overload-window MS detector/drain window (default 2000)\n"
      "  --split-ways N       fan a hot arc across N nodes (1 = detect only)\n"
      "  --ingest-capacity N  stores accepted per node per window before\n"
      "                       shedding (0 = unbounded)\n"
      "  --shed-rate P        deterministic forced shed fraction in [0,1)\n"
      "  --publish-budget N   publications per source per window before\n"
      "                       deferral (0 = unbounded)\n"
      "  --defer-capacity N   per-source deferral queue bound (default 64)\n"
      "  --oracle S           recall-oracle sampling period (enables recall)\n"
      "  --drain S            settling time after measure before reports\n"
      "  --obs-dir DIR        write DIR/metrics.json (time series + reports)\n"
      "  --trace              with --obs-dir: also stream DIR/trace.jsonl\n"
      "  --obs-window MS      time-series window in ms (default 1000)\n"
      "  --wire-shadow        route every transmission through the v1 wire\n"
      "                       codec (encode->decode; docs/WIRE_FORMAT.md)\n",
      argv0);
  std::exit(code);
}

double parse_double(const char* text, const char* argv0) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    usage(argv0);
  }
  return value;
}

long parse_long(const char* text, const char* argv0) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) {
    usage(argv0);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig config = bench::paper_experiment(100);
  double crash_fraction = 0.0;
  bool wire_shadow = false;
  const auto adversarial = [&]() -> streams::AdversarialSpec& {
    if (!config.adversarial.has_value()) {
      config.adversarial.emplace();
    }
    return *config.adversarial;
  };
  const auto overload = [&]() -> core::OverloadOptions& {
    if (!config.overload.has_value()) {
      config.overload.emplace();
    }
    return *config.overload;
  };

  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (is("--help") || is("-h")) {
      usage(argv[0], stdout, 0);
    } else if (is("--nodes")) {
      config.num_nodes = static_cast<std::size_t>(parse_long(value(), argv[0]));
    } else if (is("--radius")) {
      config.workload.query_radius = parse_double(value(), argv[0]);
    } else if (is("--seed")) {
      config.seed = static_cast<std::uint64_t>(parse_long(value(), argv[0]));
    } else if (is("--substrate")) {
      const std::string kind = value();
      if (kind == "chord") {
        config.substrate = core::SubstrateKind::kChord;
      } else if (kind == "prefix") {
        config.substrate = core::SubstrateKind::kPrefixRing;
      } else if (kind == "ideal") {
        config.substrate = core::SubstrateKind::kStaticRing;
      } else {
        usage(argv[0]);
      }
    } else if (is("--strategy")) {
      const auto kind = core::parse_strategy(value());
      if (!kind.has_value()) {
        usage(argv[0]);
      }
      config.strategy.kind = *kind;
    } else if (is("--multicast")) {
      const std::string kind = value();
      if (kind == "seq") {
        config.multicast = routing::MulticastStrategy::kSequential;
      } else if (kind == "bidir") {
        config.multicast = routing::MulticastStrategy::kBidirectional;
      } else {
        usage(argv[0]);
      }
    } else if (is("--beta")) {
      config.batching.batch_size =
          static_cast<std::size_t>(parse_long(value(), argv[0]));
    } else if (is("--window")) {
      config.features.window_size =
          static_cast<std::size_t>(parse_long(value(), argv[0]));
    } else if (is("--coeffs")) {
      config.features.num_coefficients =
          static_cast<std::size_t>(parse_long(value(), argv[0]));
    } else if (is("--synopsis")) {
      const std::string kind = value();
      if (kind == "dft") {
        config.features.synopsis = dsp::Synopsis::kFourier;
      } else if (kind == "haar") {
        config.features.synopsis = dsp::Synopsis::kHaar;
      } else {
        usage(argv[0]);
      }
    } else if (is("--warmup")) {
      config.warmup = sim::Duration::seconds(parse_double(value(), argv[0]));
    } else if (is("--measure")) {
      config.measure = sim::Duration::seconds(parse_double(value(), argv[0]));
    } else if (is("--query-rate")) {
      config.workload.query_rate_per_sec = parse_double(value(), argv[0]);
    } else if (is("--adaptive-precision")) {
      config.adaptive_precision = core::AdaptivePrecisionController::Options{};
    } else if (is("--family")) {
      const std::string kind = value();
      if (kind == "walk") {
        config.stream_family = core::StreamFamily::kRandomWalk;
      } else if (kind == "stock") {
        config.stream_family = core::StreamFamily::kStockMarket;
      } else if (kind == "hostload") {
        config.stream_family = core::StreamFamily::kHostLoad;
      } else {
        usage(argv[0]);
      }
    } else if (is("--loss")) {
      config.message_loss = parse_double(value(), argv[0]);
    } else if (is("--burst-loss")) {
      const double rate = parse_double(value(), argv[0]);
      if (rate > 0.0) {
        // Mean burst length 4 transmissions; solve p_g2b for the requested
        // stationary loss rate (see fault::GilbertElliottParams).
        fault::GilbertElliottParams burst;
        burst.p_bad_to_good = 0.25;
        burst.p_good_to_bad = 0.25 * rate / (1.0 - rate);
        config.faults.burst_loss = burst;
      }
    } else if (is("--crash-wave")) {
      crash_fraction = parse_double(value(), argv[0]);
    } else if (is("--jitter")) {
      config.faults.jitter = fault::LatencyJitter{
          sim::Duration::seconds(parse_double(value(), argv[0]) / 1000.0)};
    } else if (is("--mbr-acks")) {
      config.mbr_acks = true;
    } else if (is("--response-acks")) {
      config.response_acks = true;
    } else if (is("--mbr-refresh")) {
      config.mbr_refresh_period =
          sim::Duration::seconds(parse_double(value(), argv[0]));
    } else if (is("--query-refresh")) {
      config.query_refresh_period =
          sim::Duration::seconds(parse_double(value(), argv[0]));
    } else if (is("--replication-factor")) {
      config.replication_factor =
          static_cast<std::size_t>(parse_long(value(), argv[0]));
    } else if (is("--anti-entropy-period")) {
      config.anti_entropy_period =
          sim::Duration::seconds(parse_double(value(), argv[0]));
    } else if (is("--threads")) {
      config.threads = static_cast<std::size_t>(parse_long(value(), argv[0]));
    } else if (is("--heap-queue")) {
      config.queue_backend = sim::QueueBackend::kLegacyHeap;
    } else if (is("--adversarial")) {
      adversarial();
    } else if (is("--zipf")) {
      adversarial().zipf_exponent = parse_double(value(), argv[0]);
    } else if (is("--pattern-pool")) {
      adversarial().pattern_pool =
          static_cast<std::size_t>(parse_long(value(), argv[0]));
    } else if (is("--zipf-clients")) {
      adversarial().zipf_clients = true;
    } else if (is("--placement-skew")) {
      adversarial().placement_skew = parse_double(value(), argv[0]);
    } else if (is("--flash-crowd")) {
      streams::FlashCrowd crowd;
      crowd.at_seconds = parse_double(value(), argv[0]);
      adversarial().flash_crowd = crowd;
    } else if (is("--overload")) {
      overload();
    } else if (is("--overload-window")) {
      overload().window = sim::Duration::millis(parse_long(value(), argv[0]));
    } else if (is("--split-ways")) {
      overload().split_ways =
          static_cast<std::size_t>(parse_long(value(), argv[0]));
    } else if (is("--ingest-capacity")) {
      overload().ingest_capacity =
          static_cast<std::uint64_t>(parse_long(value(), argv[0]));
    } else if (is("--shed-rate")) {
      overload().forced_shed_rate = parse_double(value(), argv[0]);
    } else if (is("--publish-budget")) {
      overload().publish_budget =
          static_cast<std::uint64_t>(parse_long(value(), argv[0]));
    } else if (is("--defer-capacity")) {
      overload().defer_capacity =
          static_cast<std::size_t>(parse_long(value(), argv[0]));
    } else if (is("--oracle")) {
      config.oracle_sample_period =
          sim::Duration::seconds(parse_double(value(), argv[0]));
    } else if (is("--drain")) {
      config.drain = sim::Duration::seconds(parse_double(value(), argv[0]));
    } else if (is("--obs-dir")) {
      config.obs.dir = value();
    } else if (is("--trace")) {
      config.obs.trace = true;
    } else if (is("--obs-window")) {
      config.obs.window =
          sim::Duration::millis(parse_long(value(), argv[0]));
    } else if (std::strcmp(argv[i], "--wire-shadow") == 0) {
      wire_shadow = true;
    } else {
      usage(argv[0]);
    }
  }
  if (config.obs.trace && !config.obs.enabled()) {
    std::fprintf(stderr, "%s: --trace requires --obs-dir\n", argv[0]);
    return 2;
  }
  if (config.adversarial.has_value() &&
      config.adversarial->flash_crowd.has_value() &&
      config.stream_family != core::StreamFamily::kStockMarket) {
    std::fprintf(stderr, "%s: --flash-crowd requires --family stock\n",
                 argv[0]);
    return 2;
  }
  if (crash_fraction > 0.0) {
    // The canonical chaos wave: hits 10s into the measurement ramp,
    // recovers 20s later, Chord maintenance heals the ring around it.
    fault::CrashWave wave;
    wave.at = sim::SimTime::zero() + config.warmup + sim::Duration::seconds(10);
    wave.fraction = crash_fraction;
    wave.down_for = sim::Duration::seconds(20);
    config.faults.crash_waves.push_back(wave);
  }

  std::printf("sdsi_sim: %zu nodes, radius %.2f, seed %llu, strategy %s\n",
              config.num_nodes, config.workload.query_radius,
              static_cast<unsigned long long>(config.seed),
              core::strategy_name(config.strategy.kind));
  bench::print_workload_banner(config.workload);

  if (config.message_loss > 0.0) {
    std::printf("message loss: %.1f%% of transmissions dropped\n",
                config.message_loss * 100.0);
  }
  if (config.queue_backend == sim::QueueBackend::kLegacyHeap) {
    std::printf("scheduler: legacy binary-heap backend (--heap-queue)\n");
  }
  if (config.adversarial.has_value()) {
    const auto& adv = *config.adversarial;
    std::printf(
        "adversarial: pattern pool %zu (zipf %.2f), clients %s, "
        "placement skew %.2f%s\n",
        adv.pattern_pool, adv.zipf_exponent,
        adv.zipf_clients ? "zipf" : "uniform", adv.placement_skew,
        adv.flash_crowd.has_value() ? ", flash crowd armed" : "");
  }
  if (config.overload.has_value()) {
    const auto& ov = *config.overload;
    std::printf(
        "overload control: window %.0f ms, split ways %zu, ingest cap %llu, "
        "shed rate %.2f, publish budget %llu, defer cap %zu\n",
        static_cast<double>(ov.window.count_micros()) / 1000.0, ov.split_ways,
        static_cast<unsigned long long>(ov.ingest_capacity),
        ov.forced_shed_rate,
        static_cast<unsigned long long>(ov.publish_budget), ov.defer_capacity);
  }
  core::Experiment experiment(config);
  std::shared_ptr<const net::WireShadowStats> shadow_stats;
  if (wire_shadow) {
    experiment.prepare();
    shadow_stats = net::install_wire_shadow(experiment.routing_system());
  }
  experiment.run();
  if (shadow_stats != nullptr) {
    std::printf("wire shadow: %llu frames, %llu bytes crossed the v1 codec\n",
                static_cast<unsigned long long>(shadow_stats->frames),
                static_cast<unsigned long long>(shadow_stats->bytes));
  }
  if (config.obs.enabled()) {
    std::printf("observability: wrote %s/metrics.json%s\n",
                config.obs.dir.c_str(),
                config.obs.trace ? " and trace.jsonl" : "");
  }

  const core::LoadReport load = experiment.load_report();
  std::printf("\n-- Fig 6(a) load decomposition (msgs/node/s) --\n%s",
              core::render_load_table(load).render().c_str());

  const core::OverheadReport overhead = experiment.overhead_report();
  std::printf("\n-- Fig 7 overhead per event --\n");
  std::printf("  MBR internal %.3f  MBR transit %.3f\n", overhead.mbr_internal,
              overhead.mbr_transit);
  std::printf("  query internal %.3f  query transit %.3f\n",
              overhead.query_internal, overhead.query_transit);
  std::printf("  neighbor/resp %.3f  resp transit %.3f\n",
              overhead.neighbor_exchange, overhead.response_transit);

  const core::HopsReport hops = experiment.hops_report();
  std::printf("\n-- Fig 8 hops --\n");
  std::printf("  MBR %.2f  query %.2f  response %.2f\n", hops.mbr, hops.query,
              hops.response);

  const core::QualityReport quality = experiment.quality_report();
  std::printf("\n-- quality --\n");
  std::printf(
      "  queries posed %llu, responses %llu, matched streams %llu,\n"
      "  mean first response %.0f ms\n",
      static_cast<unsigned long long>(quality.queries_posed),
      static_cast<unsigned long long>(quality.responses_received),
      static_cast<unsigned long long>(quality.matches_reported),
      quality.mean_first_response_ms);

  const bool chaos_run = !config.faults.empty() || config.mbr_acks ||
                         config.mbr_refresh_period > sim::Duration() ||
                         config.oracle_sample_period > sim::Duration() ||
                         config.overload.has_value() ||
                         config.adversarial.has_value();
  if (chaos_run) {
    const core::RobustnessReport robustness = experiment.robustness_report();
    std::printf("\n-- robustness --\n");
    if (config.oracle_sample_period > sim::Duration()) {
      std::printf("  recall vs oracle %.4f (%llu of %llu pairs delivered)\n",
                  robustness.recall,
                  static_cast<unsigned long long>(robustness.delivered_pairs),
                  static_cast<unsigned long long>(robustness.oracle_pairs));
    }
    std::printf(
        "  duplicate delivery rate %.4f, duplicate stores %llu\n"
        "  MBR acks %llu, retries %llu (exhausted %llu), refreshes %llu\n"
        "  response retries %llu, location retries %llu\n"
        "  heals %llu, heal latency mean %.0f ms max %.0f ms\n"
        "  heal latency p50 %.0f ms p90 %.0f ms p99 %.0f ms\n"
        "  crashes %llu, recoveries %llu\n",
        robustness.duplicate_delivery_rate,
        static_cast<unsigned long long>(robustness.duplicate_stores),
        static_cast<unsigned long long>(robustness.mbr_acks),
        static_cast<unsigned long long>(robustness.mbr_retries),
        static_cast<unsigned long long>(robustness.mbr_retry_exhausted),
        static_cast<unsigned long long>(robustness.mbr_refreshes),
        static_cast<unsigned long long>(robustness.response_retries),
        static_cast<unsigned long long>(robustness.location_retries),
        static_cast<unsigned long long>(robustness.heals),
        robustness.mean_heal_latency_ms, robustness.max_heal_latency_ms,
        robustness.p50_heal_latency_ms, robustness.p90_heal_latency_ms,
        robustness.p99_heal_latency_ms,
        static_cast<unsigned long long>(robustness.crashes),
        static_cast<unsigned long long>(robustness.recoveries));
    if (config.replication_factor > 0) {
      std::printf(
          "  replica puts %llu, repairs %llu, handoff entries %llu"
          " (%llu bytes)\n"
          "  aggregator failovers %llu (mean %.0f ms, p90 %.0f ms),"
          " detours %llu\n",
          static_cast<unsigned long long>(robustness.replica_puts),
          static_cast<unsigned long long>(robustness.replica_repairs),
          static_cast<unsigned long long>(robustness.handoff_entries),
          static_cast<unsigned long long>(robustness.handoff_bytes),
          static_cast<unsigned long long>(robustness.aggregator_failovers),
          robustness.mean_failover_latency_ms,
          robustness.p90_failover_latency_ms,
          static_cast<unsigned long long>(robustness.report_detours));
    }
    std::printf(
        "  load imbalance p99/median: messages %.2f, work %.2f\n",
        robustness.message_load_p99_over_median,
        robustness.work_p99_over_median);
    if (config.overload.has_value()) {
      std::printf(
          "  hot-arc splits %llu, merges %llu, diverted stores %llu\n"
          "  shed MBRs %llu, backpressure deferrals %llu, drops %llu\n",
          static_cast<unsigned long long>(robustness.hot_arc_splits),
          static_cast<unsigned long long>(robustness.hot_arc_merges),
          static_cast<unsigned long long>(robustness.split_diverted_stores),
          static_cast<unsigned long long>(robustness.shed_mbrs),
          static_cast<unsigned long long>(robustness.backpressure_deferrals),
          static_cast<unsigned long long>(robustness.backpressure_drops));
    }
    std::printf(
        "%s", core::render_drops_table(robustness.drops_by_cause).render()
                  .c_str());
  }
  return 0;
}
