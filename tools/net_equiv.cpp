// net_equiv: the socket leg of the sim-vs-socket equivalence gate.
//
// Launches N sdsi_node processes (real TCP over 127.0.0.1, wire protocol
// v1), waits for the ring to run the deterministic net workload to
// completion, merges the per-process out.<i>.json results, and compares the
// merged per-query matched stream sets against the canonical simulated
// middleware run in-process (net::run_sim_reference). Exits 0 iff the
// digests are identical and non-vacuous.
//
// Usage: net_equiv --nodes N --dir SCRATCH [--seed S] [--samples K]
//                  [--node-bin PATH]
// The node binary defaults to "sdsi_node" next to this executable.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/equivalence.hpp"
#include "obs/json.hpp"

namespace fs = std::filesystem;
using namespace sdsi;

namespace {

struct Options {
  std::uint32_t nodes = 8;
  std::string dir;
  std::uint64_t seed = 42;
  std::uint32_t samples = 400;
  std::string node_bin;
  int timeout_s = 120;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --nodes N --dir SCRATCH [--seed S] [--samples K] "
               "[--node-bin PATH] [--timeout SECONDS]\n",
               argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--nodes") {
      opts.nodes = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--dir") {
      opts.dir = next();
    } else if (arg == "--seed") {
      opts.seed = std::stoull(next());
    } else if (arg == "--samples") {
      opts.samples = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--node-bin") {
      opts.node_bin = next();
    } else if (arg == "--timeout") {
      opts.timeout_s = std::stoi(next());
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (opts.nodes == 0 || opts.dir.empty()) usage_and_exit(argv[0]);
  return opts;
}

/// Directory of this executable, so sdsi_node is found in the same build
/// tree without relying on cwd or PATH.
fs::path self_directory() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return fs::path(".");
  buf[n] = '\0';
  return fs::path(buf).parent_path();
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void print_digest_diff(const net::MatchDigest& sim_digest,
                       const net::MatchDigest& net_digest) {
  for (const auto& [query, streams] : sim_digest) {
    const auto it = net_digest.find(query);
    if (it != net_digest.end() && it->second == streams) continue;
    std::fprintf(stderr, "  query %llu: sim={",
                 static_cast<unsigned long long>(query));
    for (const StreamId s : streams) {
      std::fprintf(stderr, " %llu", static_cast<unsigned long long>(s));
    }
    std::fprintf(stderr, " } net={");
    if (it != net_digest.end()) {
      for (const StreamId s : it->second) {
        std::fprintf(stderr, " %llu", static_cast<unsigned long long>(s));
      }
    } else {
      std::fprintf(stderr, " <missing>");
    }
    std::fprintf(stderr, " }\n");
  }
  for (const auto& [query, streams] : net_digest) {
    if (sim_digest.find(query) == sim_digest.end()) {
      std::fprintf(stderr, "  query %llu: only in net digest\n",
                   static_cast<unsigned long long>(query));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);

  fs::create_directories(opts.dir);
  // Stale rendezvous files from a previous run would wreck the barriers.
  for (const auto& entry : fs::directory_iterator(opts.dir)) {
    fs::remove_all(entry.path());
  }

  const fs::path node_bin = opts.node_bin.empty()
                                ? self_directory() / "sdsi_node"
                                : fs::path(opts.node_bin);
  if (!fs::exists(node_bin)) {
    std::fprintf(stderr, "net_equiv: node binary not found: %s\n",
                 node_bin.c_str());
    return 2;
  }

  // --- Launch the ring ----------------------------------------------------
  std::vector<pid_t> children;
  children.reserve(opts.nodes);
  for (std::uint32_t i = 0; i < opts.nodes; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("net_equiv: fork");
      for (const pid_t child : children) ::kill(child, SIGKILL);
      return 2;
    }
    if (pid == 0) {
      const std::string index_arg = std::to_string(i);
      const std::string nodes_arg = std::to_string(opts.nodes);
      const std::string seed_arg = std::to_string(opts.seed);
      const std::string samples_arg = std::to_string(opts.samples);
      const char* child_argv[] = {
          node_bin.c_str(),    "--index",   index_arg.c_str(),
          "--nodes",           nodes_arg.c_str(),
          "--dir",             opts.dir.c_str(),
          "--seed",            seed_arg.c_str(),
          "--samples",         samples_arg.c_str(),
          nullptr};
      ::execv(node_bin.c_str(), const_cast<char* const*>(child_argv));
      std::perror("net_equiv: execv");
      ::_exit(127);
    }
    children.push_back(pid);
  }

  // --- Wait for every process (bounded) -----------------------------------
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::seconds(opts.timeout_s);
  std::uint32_t exited_ok = 0;
  bool failed = false;
  std::vector<pid_t> pending = children;
  while (!pending.empty() && !failed) {
    if (Clock::now() > deadline) {
      std::fprintf(stderr, "net_equiv: timeout after %d s (%zu still up)\n",
                   opts.timeout_s, pending.size());
      failed = true;
      break;
    }
    for (auto it = pending.begin(); it != pending.end();) {
      int status = 0;
      const pid_t done = ::waitpid(*it, &status, WNOHANG);
      if (done == 0) {
        ++it;
        continue;
      }
      if (done < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "net_equiv: node pid %d failed (status %d)\n",
                     static_cast<int>(*it), status);
        failed = true;
      } else {
        ++exited_ok;
      }
      it = pending.erase(it);
    }
    ::usleep(20'000);
  }
  if (failed) {
    for (const pid_t child : pending) ::kill(child, SIGKILL);
    for (const pid_t child : pending) ::waitpid(child, nullptr, 0);
    return 1;
  }
  std::fprintf(stderr, "net_equiv: %u/%u node processes exited cleanly\n",
               exited_ok, opts.nodes);

  // --- Merge the per-process digests --------------------------------------
  net::MatchDigest net_digest;
  std::uint64_t total_frames = 0;
  for (std::uint32_t i = 0; i < opts.nodes; ++i) {
    const fs::path out_path =
        fs::path(opts.dir) / ("out." + std::to_string(i) + ".json");
    std::string error;
    const auto doc = obs::Json::parse(slurp(out_path), &error);
    if (!doc || !doc->is_object()) {
      std::fprintf(stderr, "net_equiv: bad %s: %s\n", out_path.c_str(),
                   error.c_str());
      return 1;
    }
    const obs::Json* results = doc->find("results");
    if (results == nullptr || !results->is_object()) {
      std::fprintf(stderr, "net_equiv: %s missing results\n",
                   out_path.c_str());
      return 1;
    }
    for (const auto& [key, streams] : results->members()) {
      auto& bucket = net_digest[std::stoull(key)];
      for (std::size_t k = 0; k < streams.size(); ++k) {
        bucket.insert(static_cast<StreamId>(streams[k].as_int()));
      }
    }
    const obs::Json* transport = doc->find("transport");
    if (transport != nullptr) {
      if (const obs::Json* frames = transport->find("frames_received")) {
        total_frames += static_cast<std::uint64_t>(frames->as_int());
      }
    }
  }

  // --- Compare against the canonical sim ----------------------------------
  net::WorkloadConfig config;
  config.nodes = opts.nodes;
  config.seed = opts.seed;
  config.samples_per_stream = opts.samples;
  const net::MatchDigest sim_digest = net::run_sim_reference(config);

  std::size_t nonempty = 0;
  for (const auto& [query, streams] : sim_digest) {
    if (!streams.empty()) ++nonempty;
  }
  if (sim_digest.size() != opts.nodes || nonempty == 0) {
    std::fprintf(stderr,
                 "net_equiv: vacuous reference (queries=%zu, nonempty=%zu)\n",
                 sim_digest.size(), nonempty);
    return 1;
  }

  if (net_digest != sim_digest) {
    std::fprintf(stderr, "net_equiv: DIGEST MISMATCH (sim vs socket):\n");
    print_digest_diff(sim_digest, net_digest);
    return 1;
  }

  std::printf(
      "net_equiv: OK — %u processes, %zu queries (%zu with matches), "
      "%llu TCP frames, socket digest == sim digest\n",
      opts.nodes, sim_digest.size(), nonempty,
      static_cast<unsigned long long>(total_frames));
  return 0;
}
