// net_equiv: the socket leg of the sim-vs-socket equivalence gate, plus the
// net-chaos drill driver.
//
// Fault-free mode (default): launches N sdsi_node processes (real TCP over
// 127.0.0.1, wire protocol v1), waits for the ring to run the deterministic
// net workload to completion, merges the per-process out.<i>.json results,
// and compares the merged per-query matched stream sets against the
// canonical simulated middleware run in-process (net::run_sim_reference).
// Exits 0 iff the digests are identical and non-vacuous.
//
// Chaos mode (--chaos, or any --fault-* / --kill-index flag): the ring runs
// with seeded transport fault injection and the NetNode reliability stack
// on, optionally SIGKILLing one member mid-run and restarting it on the
// same port with a bumped epoch. The gate then relaxes from exact equality
// to a recall floor (matched pairs recovered vs the fault-free sim digest,
// excluding queries posed by the killed member — the RecallOracle policy),
// and additionally enforces the zero-unaccounted-drops identity per
// endpoint:
//   faults.offered == transport.frames_sent + drops.outbox_overflow
//                     + drops.uniform_loss + drops.burst_loss
//                     + drops.partition
// (no frame may vanish without a DropCause). --bench-json writes the drill
// outcome as socket-chaos rows in the BENCH_robustness.json row schema.
//
// Usage: net_equiv --nodes N --dir SCRATCH [--seed S] [--samples K]
//                  [--node-bin PATH] [--timeout SECONDS]
//                  [--chaos] [--fault-uniform P] [--fault-burst RATE]
//                  [--fault-jitter-ms MS] [--fault-reorder P]
//                  [--fault-corrupt P] [--converge-ms MS]
//                  [--kill-index K] [--kill-after-ms T]
//                  [--restart-after-ms R] [--recall-floor F]
//                  [--bench-json PATH]
// The node binary defaults to "sdsi_node" next to this executable.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "net/equivalence.hpp"
#include "net/workload.hpp"
#include "obs/json.hpp"

namespace fs = std::filesystem;
using namespace sdsi;

namespace {

struct Options {
  std::uint32_t nodes = 8;
  std::string dir;
  std::uint64_t seed = 42;
  std::uint32_t samples = 400;
  core::StrategyKind strategy = core::StrategyKind::kDft;
  std::string node_bin;
  int timeout_s = 120;
  // Chaos drill:
  bool chaos = false;
  double fault_uniform = 0.0;
  double fault_burst = 0.0;
  int fault_jitter_ms = 0;
  double fault_reorder = 0.0;
  double fault_corrupt = 0.0;
  int converge_ms = 4000;
  int kill_index = -1;
  int kill_after_ms = 1500;
  int restart_after_ms = 500;
  double recall_floor = 0.95;
  std::string bench_json;
};

[[noreturn]] void usage_and_exit(const char* argv0, std::FILE* out = stderr,
                                 int code = 2) {
  std::fprintf(out,
               "usage: %s --nodes N --dir SCRATCH [--seed S] [--samples K] "
               "[--strategy dft|ecm|lsh] "
               "[--node-bin PATH] [--timeout SECONDS] [--chaos] "
               "[--fault-uniform P] [--fault-burst RATE] "
               "[--fault-jitter-ms MS] [--fault-reorder P] "
               "[--fault-corrupt P] [--converge-ms MS] [--kill-index K] "
               "[--kill-after-ms T] [--restart-after-ms R] "
               "[--recall-floor F] [--bench-json PATH]\n",
               argv0);
  std::exit(code);
}

Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage_and_exit(argv[0], stdout, 0);
    } else if (arg == "--nodes") {
      opts.nodes = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--dir") {
      opts.dir = next();
    } else if (arg == "--seed") {
      opts.seed = std::stoull(next());
    } else if (arg == "--samples") {
      opts.samples = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--strategy") {
      const auto kind = core::parse_strategy(next());
      if (!kind.has_value()) usage_and_exit(argv[0]);
      opts.strategy = *kind;
    } else if (arg == "--node-bin") {
      opts.node_bin = next();
    } else if (arg == "--timeout") {
      opts.timeout_s = std::stoi(next());
    } else if (arg == "--chaos") {
      opts.chaos = true;
    } else if (arg == "--fault-uniform") {
      opts.fault_uniform = std::stod(next());
      opts.chaos = true;
    } else if (arg == "--fault-burst") {
      opts.fault_burst = std::stod(next());
      opts.chaos = true;
    } else if (arg == "--fault-jitter-ms") {
      opts.fault_jitter_ms = std::stoi(next());
      opts.chaos = true;
    } else if (arg == "--fault-reorder") {
      opts.fault_reorder = std::stod(next());
      opts.chaos = true;
    } else if (arg == "--fault-corrupt") {
      opts.fault_corrupt = std::stod(next());
      opts.chaos = true;
    } else if (arg == "--converge-ms") {
      opts.converge_ms = std::stoi(next());
    } else if (arg == "--kill-index") {
      opts.kill_index = std::stoi(next());
      opts.chaos = true;
    } else if (arg == "--kill-after-ms") {
      opts.kill_after_ms = std::stoi(next());
    } else if (arg == "--restart-after-ms") {
      opts.restart_after_ms = std::stoi(next());
    } else if (arg == "--recall-floor") {
      opts.recall_floor = std::stod(next());
    } else if (arg == "--bench-json") {
      opts.bench_json = next();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (opts.nodes == 0 || opts.dir.empty()) usage_and_exit(argv[0]);
  if (opts.chaos && opts.fault_uniform == 0.0 && opts.fault_burst == 0.0 &&
      opts.fault_jitter_ms == 0 && opts.fault_reorder == 0.0 &&
      opts.fault_corrupt == 0.0 && opts.kill_index < 0) {
    // Bare --chaos: the acceptance-gate preset (~10% bursty loss, light
    // jitter/reorder/corruption, one mid-run crash of node 1).
    opts.fault_burst = 0.10;
    opts.fault_jitter_ms = 5;
    opts.fault_reorder = 0.02;
    opts.fault_corrupt = 0.005;
    opts.kill_index = 1;
  }
  if (opts.kill_index >= 0 &&
      static_cast<std::uint32_t>(opts.kill_index) >= opts.nodes) {
    std::fprintf(stderr, "net_equiv: --kill-index out of range\n");
    std::exit(2);
  }
  return opts;
}

/// Directory of this executable, so sdsi_node is found in the same build
/// tree without relying on cwd or PATH.
fs::path self_directory() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return fs::path(".");
  buf[n] = '\0';
  return fs::path(buf).parent_path();
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void print_digest_diff(const net::MatchDigest& sim_digest,
                       const net::MatchDigest& net_digest) {
  for (const auto& [query, streams] : sim_digest) {
    const auto it = net_digest.find(query);
    if (it != net_digest.end() && it->second == streams) continue;
    std::fprintf(stderr, "  query %llu: sim={",
                 static_cast<unsigned long long>(query));
    for (const StreamId s : streams) {
      std::fprintf(stderr, " %llu", static_cast<unsigned long long>(s));
    }
    std::fprintf(stderr, " } net={");
    if (it != net_digest.end()) {
      for (const StreamId s : it->second) {
        std::fprintf(stderr, " %llu", static_cast<unsigned long long>(s));
      }
    } else {
      std::fprintf(stderr, " <missing>");
    }
    std::fprintf(stderr, " }\n");
  }
  for (const auto& [query, streams] : net_digest) {
    if (sim_digest.find(query) == sim_digest.end()) {
      std::fprintf(stderr, "  query %llu: only in net digest\n",
                   static_cast<unsigned long long>(query));
    }
  }
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

/// Forks one sdsi_node. `epoch` > 0 marks a restart (fixed `port`).
pid_t launch_node(const Options& opts, const fs::path& node_bin,
                  std::uint32_t index, std::uint32_t port,
                  std::uint64_t epoch) {
  const pid_t pid = ::fork();
  if (pid != 0) {
    return pid;
  }
  std::vector<std::string> args;
  args.push_back(node_bin.string());
  args.push_back("--index");
  args.push_back(std::to_string(index));
  args.push_back("--nodes");
  args.push_back(std::to_string(opts.nodes));
  args.push_back("--dir");
  args.push_back(opts.dir);
  args.push_back("--seed");
  args.push_back(std::to_string(opts.seed));
  args.push_back("--samples");
  args.push_back(std::to_string(opts.samples));
  args.push_back("--strategy");
  args.push_back(core::strategy_name(opts.strategy));
  if (opts.chaos) {
    args.push_back("--reliable");
    args.push_back("--converge-ms");
    args.push_back(std::to_string(opts.converge_ms));
    if (opts.fault_uniform > 0.0) {
      args.push_back("--fault-uniform");
      args.push_back(format_double(opts.fault_uniform));
    }
    if (opts.fault_burst > 0.0) {
      args.push_back("--fault-burst");
      args.push_back(format_double(opts.fault_burst));
    }
    if (opts.fault_jitter_ms > 0) {
      args.push_back("--fault-jitter-ms");
      args.push_back(std::to_string(opts.fault_jitter_ms));
    }
    if (opts.fault_reorder > 0.0) {
      args.push_back("--fault-reorder");
      args.push_back(format_double(opts.fault_reorder));
    }
    if (opts.fault_corrupt > 0.0) {
      args.push_back("--fault-corrupt");
      args.push_back(format_double(opts.fault_corrupt));
    }
  }
  if (port != 0) {
    args.push_back("--port");
    args.push_back(std::to_string(port));
  }
  if (epoch != 0) {
    args.push_back("--epoch");
    args.push_back(std::to_string(epoch));
  }
  std::vector<char*> argv_raw;
  argv_raw.reserve(args.size() + 1);
  for (std::string& a : args) {
    argv_raw.push_back(a.data());
  }
  argv_raw.push_back(nullptr);
  ::execv(node_bin.c_str(), argv_raw.data());
  std::perror("net_equiv: execv");
  ::_exit(127);
}

std::uint64_t json_u64(const obs::Json* obj, const char* key) {
  if (obj == nullptr) return 0;
  const obs::Json* field = obj->find(key);
  return field == nullptr
             ? 0
             : static_cast<std::uint64_t>(field->as_int());
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);

  fs::create_directories(opts.dir);
  // Stale rendezvous files from a previous run would wreck the barriers.
  for (const auto& entry : fs::directory_iterator(opts.dir)) {
    fs::remove_all(entry.path());
  }

  const fs::path node_bin = opts.node_bin.empty()
                                ? self_directory() / "sdsi_node"
                                : fs::path(opts.node_bin);
  if (!fs::exists(node_bin)) {
    std::fprintf(stderr, "net_equiv: node binary not found: %s\n",
                 node_bin.c_str());
    return 2;
  }

  // --- Launch the ring ----------------------------------------------------
  using Clock = std::chrono::steady_clock;
  const auto launch_time = Clock::now();
  std::vector<pid_t> children;
  children.reserve(opts.nodes);
  for (std::uint32_t i = 0; i < opts.nodes; ++i) {
    const pid_t pid = launch_node(opts, node_bin, i, /*port=*/0, /*epoch=*/0);
    if (pid < 0) {
      std::perror("net_equiv: fork");
      for (const pid_t child : children) ::kill(child, SIGKILL);
      return 2;
    }
    children.push_back(pid);
  }

  // --- Wait for every process, running the crash drill --------------------
  const auto deadline = Clock::now() + std::chrono::seconds(opts.timeout_s);
  enum class Drill { kIdle, kKilled, kRestarted, kOff };
  Drill drill =
      opts.chaos && opts.kill_index >= 0 ? Drill::kIdle : Drill::kOff;
  auto killed_at = Clock::now();
  std::uint32_t victim_port = 0;
  std::uint32_t exited_ok = 0;
  bool failed = false;
  std::vector<pid_t> pending = children;
  while (!pending.empty() && !failed) {
    if (Clock::now() > deadline) {
      std::fprintf(stderr, "net_equiv: timeout after %d s (%zu still up)\n",
                   opts.timeout_s, pending.size());
      failed = true;
      break;
    }
    if (drill == Drill::kIdle &&
        Clock::now() - launch_time >
            std::chrono::milliseconds(opts.kill_after_ms)) {
      const pid_t victim = children[static_cast<std::size_t>(opts.kill_index)];
      const fs::path port_path =
          fs::path(opts.dir) / ("port." + std::to_string(opts.kill_index));
      std::ifstream in(port_path);
      in >> victim_port;
      if (victim_port == 0) {
        // The ring is still rendezvousing; try again next iteration.
      } else {
        std::fprintf(stderr, "net_equiv: SIGKILL node %d (pid %d)\n",
                     opts.kill_index, static_cast<int>(victim));
        ::kill(victim, SIGKILL);
        ::waitpid(victim, nullptr, 0);
        pending.erase(std::remove(pending.begin(), pending.end(), victim),
                      pending.end());
        killed_at = Clock::now();
        drill = Drill::kKilled;
      }
    }
    if (drill == Drill::kKilled &&
        Clock::now() - killed_at >
            std::chrono::milliseconds(opts.restart_after_ms)) {
      std::fprintf(stderr, "net_equiv: restarting node %d on port %u\n",
                   opts.kill_index, victim_port);
      const pid_t replacement =
          launch_node(opts, node_bin,
                      static_cast<std::uint32_t>(opts.kill_index),
                      victim_port, /*epoch=*/1);
      if (replacement < 0) {
        std::perror("net_equiv: fork (restart)");
        failed = true;
        break;
      }
      children[static_cast<std::size_t>(opts.kill_index)] = replacement;
      pending.push_back(replacement);
      drill = Drill::kRestarted;
    }
    for (auto it = pending.begin(); it != pending.end();) {
      int status = 0;
      const pid_t done = ::waitpid(*it, &status, WNOHANG);
      if (done == 0) {
        ++it;
        continue;
      }
      if (done < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "net_equiv: node pid %d failed (status %d)\n",
                     static_cast<int>(*it), status);
        failed = true;
      } else {
        ++exited_ok;
      }
      it = pending.erase(it);
    }
    ::usleep(20'000);
  }
  if (drill == Drill::kIdle || drill == Drill::kKilled) {
    std::fprintf(stderr,
                 "net_equiv: drill never completed (ring finished first); "
                 "rerun with a smaller --kill-after-ms\n");
    failed = true;
  }
  if (failed) {
    for (const pid_t child : pending) ::kill(child, SIGKILL);
    for (const pid_t child : pending) ::waitpid(child, nullptr, 0);
    return 1;
  }
  std::fprintf(stderr, "net_equiv: %u/%u node processes exited cleanly\n",
               exited_ok, opts.nodes);

  // --- Merge the per-process digests --------------------------------------
  net::MatchDigest net_digest;
  std::uint64_t total_frames = 0;
  std::uint64_t total_reconnects = 0;
  std::uint64_t total_detours = 0;
  std::uint64_t total_rejoins = 0;
  std::uint64_t total_retransmits = 0;
  std::uint64_t drops_total = 0;
  std::uint64_t drops_unaccounted = 0;
  for (std::uint32_t i = 0; i < opts.nodes; ++i) {
    const fs::path out_path =
        fs::path(opts.dir) / ("out." + std::to_string(i) + ".json");
    std::string error;
    const auto doc = obs::Json::parse(slurp(out_path), &error);
    if (!doc || !doc->is_object()) {
      std::fprintf(stderr, "net_equiv: bad %s: %s\n", out_path.c_str(),
                   error.c_str());
      return 1;
    }
    const obs::Json* results = doc->find("results");
    if (results == nullptr || !results->is_object()) {
      std::fprintf(stderr, "net_equiv: %s missing results\n",
                   out_path.c_str());
      return 1;
    }
    for (const auto& [key, streams] : results->members()) {
      auto& bucket = net_digest[std::stoull(key)];
      for (std::size_t k = 0; k < streams.size(); ++k) {
        bucket.insert(static_cast<StreamId>(streams[k].as_int()));
      }
    }
    const obs::Json* transport = doc->find("transport");
    total_frames += json_u64(transport, "frames_received");
    total_reconnects += json_u64(transport, "reconnect_attempts");
    const obs::Json* counters = doc->find("counters");
    total_detours += json_u64(counters, "detours");
    total_retransmits += json_u64(counters, "mbr_retransmits") +
                         json_u64(counters, "response_retransmits");
    total_rejoins += json_u64(doc->find("detector"), "rejoins");

    // Zero-unaccounted-drops: every frame this endpoint offered must be
    // either handed to the kernel or attributed to a DropCause.
    const obs::Json* faults = doc->find("faults");
    const obs::Json* drops = doc->find("drops");
    for (const char* slug :
         {"uniform_loss", "burst_loss", "partition", "outbox_overflow",
          "malformed_frame"}) {
      drops_total += json_u64(drops, slug);
    }
    if (faults != nullptr) {
      const std::uint64_t offered = json_u64(faults, "offered");
      const std::uint64_t accounted =
          json_u64(transport, "frames_sent") +
          json_u64(drops, "outbox_overflow") +
          json_u64(drops, "uniform_loss") + json_u64(drops, "burst_loss") +
          json_u64(drops, "partition");
      const std::uint64_t leaks = json_u64(faults, "forward_failures") +
                                  json_u64(faults, "pending_delayed");
      if (offered != accounted || leaks != 0) {
        std::fprintf(stderr,
                     "net_equiv: node %u UNACCOUNTED DROPS: offered=%llu "
                     "accounted=%llu leaks=%llu\n",
                     i, static_cast<unsigned long long>(offered),
                     static_cast<unsigned long long>(accounted),
                     static_cast<unsigned long long>(leaks));
        drops_unaccounted +=
            (offered > accounted ? offered - accounted : accounted - offered) +
            leaks;
      }
    }
  }

  // --- Compare against the canonical (fault-free) sim ---------------------
  net::WorkloadConfig config;
  config.nodes = opts.nodes;
  config.seed = opts.seed;
  config.samples_per_stream = opts.samples;
  config.strategy.kind = opts.strategy;
  const net::MatchDigest sim_digest = net::run_sim_reference(config);

  std::size_t nonempty = 0;
  for (const auto& [query, streams] : sim_digest) {
    if (!streams.empty()) ++nonempty;
  }
  if (sim_digest.size() != opts.nodes || nonempty == 0) {
    std::fprintf(stderr,
                 "net_equiv: vacuous reference (queries=%zu, nonempty=%zu)\n",
                 sim_digest.size(), nonempty);
    return 1;
  }

  if (!opts.chaos) {
    if (net_digest != sim_digest) {
      std::fprintf(stderr, "net_equiv: DIGEST MISMATCH (sim vs socket):\n");
      print_digest_diff(sim_digest, net_digest);
      return 1;
    }
    std::printf(
        "net_equiv: OK — %u processes, %zu queries (%zu with matches), "
        "%llu TCP frames, socket digest == sim digest\n",
        opts.nodes, sim_digest.size(), nonempty,
        static_cast<unsigned long long>(total_frames));
    return 0;
  }

  // --- Chaos verdict: recall floor + full drop accounting -----------------
  // Queries posed by the killed member are excluded (its client-side result
  // set died with the first process; the RecallOracle applies the same
  // policy to crashed sim clients).
  std::map<std::uint64_t, NodeIndex> client_of;
  for (const net::WorkloadQuery& query : net::workload_queries(config)) {
    client_of[query.id] = query.client;
  }
  std::uint64_t expected_pairs = 0;
  std::uint64_t recovered_pairs = 0;
  std::uint64_t excluded_queries = 0;
  for (const auto& [query, streams] : sim_digest) {
    const auto client_it = client_of.find(query);
    if (opts.kill_index >= 0 && client_it != client_of.end() &&
        client_it->second == static_cast<NodeIndex>(opts.kill_index)) {
      ++excluded_queries;
      continue;
    }
    expected_pairs += streams.size();
    const auto it = net_digest.find(query);
    if (it == net_digest.end()) continue;
    for (const StreamId s : streams) {
      if (it->second.count(s) != 0) ++recovered_pairs;
    }
  }
  const double recall =
      expected_pairs == 0
          ? 1.0
          : static_cast<double>(recovered_pairs) /
                static_cast<double>(expected_pairs);

  std::printf(
      "net_equiv: chaos — recall %.4f (%llu/%llu pairs, %llu queries "
      "excluded), drops=%llu (unaccounted %llu), detours=%llu, "
      "retransmits=%llu, rejoins=%llu, reconnects=%llu, frames=%llu\n",
      recall, static_cast<unsigned long long>(recovered_pairs),
      static_cast<unsigned long long>(expected_pairs),
      static_cast<unsigned long long>(excluded_queries),
      static_cast<unsigned long long>(drops_total),
      static_cast<unsigned long long>(drops_unaccounted),
      static_cast<unsigned long long>(total_detours),
      static_cast<unsigned long long>(total_retransmits),
      static_cast<unsigned long long>(total_rejoins),
      static_cast<unsigned long long>(total_reconnects),
      static_cast<unsigned long long>(total_frames));

  if (!opts.bench_json.empty()) {
    const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             Clock::now() - launch_time)
                             .count();
    std::ostringstream cfg;
    cfg << "socket N=" << opts.nodes << " seed=" << opts.seed
        << " burst~" << static_cast<int>(opts.fault_burst * 100) << "%"
        << " corrupt=" << format_double(opts.fault_corrupt)
        << " jitter=" << opts.fault_jitter_ms << "ms";
    if (opts.kill_index >= 0) {
      cfg << " kill=" << opts.kill_index << "@" << opts.kill_after_ms
          << "ms restart+" << opts.restart_after_ms << "ms";
    }
    const auto row = [&](const char* name, double value) {
      obs::Json r = obs::Json::object();
      r["name"] = std::string(name);
      r["config"] = cfg.str();
      r["threads"] = static_cast<std::uint64_t>(1);
      r["ops_per_sec"] = value;
      r["wall_ms"] = static_cast<std::uint64_t>(wall_ms);
      return r;
    };
    obs::Json rows = obs::Json::array();
    rows.push_back(row("recall/socket-chaos", recall));
    rows.push_back(row("drops_total/socket-chaos",
                       static_cast<double>(drops_total)));
    rows.push_back(row("drops_unaccounted/socket-chaos",
                       static_cast<double>(drops_unaccounted)));
    rows.push_back(row("detours/socket-chaos",
                       static_cast<double>(total_detours)));
    rows.push_back(row("retransmits/socket-chaos",
                       static_cast<double>(total_retransmits)));
    rows.push_back(row("rejoins/socket-chaos",
                       static_cast<double>(total_rejoins)));
    rows.push_back(row("frames/socket-chaos",
                       static_cast<double>(total_frames)));
    obs::Json doc = obs::Json::object();
    doc["schema_version"] = static_cast<std::uint64_t>(1);
    doc["suite"] = std::string("robustness");
    doc["benchmarks"] = std::move(rows);
    std::ofstream out(opts.bench_json, std::ios::trunc);
    out << doc.dump(2) << "\n";
  }

  if (drops_unaccounted != 0) {
    std::fprintf(stderr, "net_equiv: FAIL — unaccounted drops\n");
    return 1;
  }
  if (recall < opts.recall_floor) {
    std::fprintf(stderr, "net_equiv: FAIL — recall %.4f < floor %.4f\n",
                 recall, opts.recall_floor);
    print_digest_diff(sim_digest, net_digest);
    return 1;
  }
  return 0;
}
